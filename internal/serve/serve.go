// Package serve is the campaign service behind grpserve: an HTTP/JSON
// front end that accepts sweep submissions in the grpsweep spec grammar,
// expands them, and schedules every client's cells onto one shared
// bounded worker pool with per-tenant weighted-round-robin fairness and
// admission backpressure.
//
// The service composes the campaign engine's layers rather than
// re-implementing them: results come from the content-addressed store
// (local directory or sharded in-memory, behind campaign.Backend),
// identical in-flight cells across concurrent sweeps collapse through
// the engine's singleflight so each unique cell simulates exactly once,
// per-sweep journals make a kill -9 of the server resumable, and the
// artifact endpoint renders through campaign.WriteArtifact — the same
// code path as the grpsweep CLI, which is what makes a served artifact
// byte-identical to a local run of the same grid.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"grp/internal/campaign"
	"grp/internal/obs"
)

// Config configures a campaign server.
type Config struct {
	// Workers is the shared pool width; <= 0 uses GOMAXPROCS.
	Workers int
	// MaxQueue bounds admitted-but-undispatched cells across all sweeps;
	// submissions past it get 429. <= 0 uses 4096.
	MaxQueue int
	// CacheDir is the result store and journal root (default .grpcache).
	CacheDir string
	// Mem swaps the disk store for the sharded in-memory backend:
	// no persistence, no journals, no resume — for tests and ephemeral
	// deployments.
	Mem bool
	// CellTimeout bounds one attempt of one cell (0 = none).
	CellTimeout time.Duration
	// Retries is the per-cell attempt budget (0 = engine default).
	Retries int
	// Warnf receives non-fatal infrastructure warnings.
	Warnf func(format string, args ...interface{})
}

// Server owns the engine, the scheduler, and the sweep registry.
type Server struct {
	cfg    Config
	eng    *campaign.Engine
	rep    *obs.Reporter
	info   obs.BuildInfo
	sched  *scheduler
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	sweeps map[string]*sweep
	order  []string // admission order, for stable listings
}

// New builds a server. Call Start to launch the worker pool (and resume
// any journaled sweeps a previous process left unfinished).
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4096
	}
	if cfg.CacheDir == "" {
		cfg.CacheDir = campaign.DefaultCacheDir
	}
	var backend campaign.Backend
	if cfg.Mem {
		backend = campaign.NewMemBackend()
	} else {
		backend = campaign.NewStore(cfg.CacheDir, 0)
	}
	s := &Server{
		cfg: cfg,
		eng: campaign.New(campaign.Config{
			Jobs:        cfg.Workers,
			Backend:     backend,
			Dedup:       true, // concurrent sweeps share cells; collapse them
			CellTimeout: cfg.CellTimeout,
			Retry:       campaign.RetryPolicy{MaxAttempts: cfg.Retries},
			Warnf:       cfg.Warnf,
		}),
		rep:    obs.NewReporter(0, cfg.Workers),
		info:   obs.NewBuildInfo(obs.Version, campaign.SchemaVersion()),
		sweeps: map[string]*sweep{},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.sched = newScheduler(cfg.Workers, cfg.MaxQueue, s.runCell)
	return s
}

// Start launches the worker pool and resubmits journaled sweeps a killed
// predecessor left behind.
func (s *Server) Start() {
	s.sched.start()
	if !s.cfg.Mem {
		s.resumeJournaled()
	}
}

// Drain gracefully stops the pool: in-flight cells finish and are
// journaled; queued cells stay durably undone for the next process to
// resume. Open journals close so their sweep locks release.
func (s *Server) Drain() {
	s.sched.drain()
	s.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sw := range s.sweeps {
		sw.mu.Lock()
		j, finished := sw.journal, sw.finished
		sw.journal = nil
		sw.mu.Unlock()
		if j != nil && !finished {
			j.Close()
		}
	}
}

// warnf routes a warning to the configured sink.
func (s *Server) warnf(format string, args ...interface{}) {
	if s.cfg.Warnf != nil {
		s.cfg.Warnf(format, args...)
	}
}

// submitName is the per-journal record that lets a restarted server
// reconstruct and resubmit an unfinished sweep.
const submitName = "submit.json"

// resumeJournaled rescans the journal root for sweeps that never
// finished (their submit records still exist) and resubmits them.
func (s *Server) resumeJournaled() {
	matches, err := filepath.Glob(filepath.Join(s.cfg.CacheDir, "journal", "*", submitName))
	if err != nil || len(matches) == 0 {
		return
	}
	sort.Strings(matches) // deterministic admission order
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			s.warnf("serve: resume: reading %s: %v", path, err)
			continue
		}
		req, err := DecodeSweepRequest(data)
		if err != nil {
			s.warnf("serve: resume: %s is not a sweep submission: %v", path, err)
			continue
		}
		sw, created, err := s.submit(req)
		if err != nil {
			s.warnf("serve: resume: resubmitting %s: %v", path, err)
			continue
		}
		if created {
			s.warnf("serve: resumed sweep %s (%d of %d cells already done)",
				sw.id, sw.resumed, len(sw.jobs))
		}
	}
}

// submit admits a validated request: expands it, keys it, registers the
// sweep (idempotently — the sweep ID is the content address of its
// cells, so an identical resubmission returns the existing sweep), opens
// its journal, and hands its cells to the scheduler. created reports
// whether this call admitted a new sweep.
func (s *Server) submit(req *SweepRequest) (*sweep, bool, error) {
	grid, err := req.Grid()
	if err != nil {
		return nil, false, err
	}
	jobs := grid.Jobs()
	keys, err := s.eng.Keys(jobs)
	if err != nil {
		return nil, false, err
	}
	id := campaign.SweepID(keys)

	s.mu.Lock()
	if sw, ok := s.sweeps[id]; ok {
		s.mu.Unlock()
		return sw, false, nil
	}
	sw := newSweep(id, *req, grid, jobs, keys)
	s.sweeps[id] = sw
	s.order = append(s.order, id)
	s.mu.Unlock()

	if !s.cfg.Mem && len(jobs) > 0 {
		j, jerr := campaign.OpenOrResumeJournal(s.cfg.CacheDir, req.Spec, keys)
		if jerr != nil {
			// Another live process owns this sweep's journal. The cache
			// and singleflight still give exactly-once simulation; only
			// crash durability is lost, so degrade rather than reject.
			s.warnf("serve: sweep %s runs without a journal: %v", id, jerr)
		} else {
			sw.journal = j
			sw.resumed = j.CompletedCount()
			if data, merr := json.Marshal(req); merr == nil {
				if werr := os.WriteFile(filepath.Join(j.Dir(), submitName), data, 0o644); werr != nil {
					s.warnf("serve: sweep %s: writing submit record: %v", id, werr)
				}
			}
		}
	}

	pending := make([]int, len(jobs))
	for i := range pending {
		pending[i] = i
	}
	if serr := s.sched.submit(sw, pending); serr != nil {
		s.evict(sw)
		return nil, false, serr
	}
	s.rep.AddTotal(len(jobs))
	if len(jobs) == 0 {
		s.finalize(sw)
	}
	return sw, true, nil
}

// evict rolls back a sweep whose admission failed, so a later retry of
// the same submission starts clean.
func (s *Server) evict(sw *sweep) {
	s.mu.Lock()
	delete(s.sweeps, sw.id)
	for i, id := range s.order {
		if id == sw.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if sw.journal != nil {
		os.Remove(filepath.Join(sw.journal.Dir(), submitName))
		sw.journal.Close()
		sw.journal = nil
	}
}

// runCell is the worker body: one cell of one sweep through the engine's
// cache, singleflight, and retry layers, then journal + stream.
func (s *Server) runCell(sw *sweep, i int) {
	s.rep.CellStart()
	r, hit, key, err := s.eng.RunOne(s.ctx, i, sw.jobs[i])
	if err != nil {
		if s.ctx.Err() != nil || errors.Is(err, context.Canceled) {
			// Shutdown, not a cell verdict: leave the cell undone for the
			// journal to resume. The reporter still closes its busy span.
			s.rep.CellDone(false)
			return
		}
		f := campaign.NewCellFailure(i, sw.jobs[i], err)
		if sw.journal != nil && key.Digest != "" {
			if jerr := sw.journal.RecordFail(i, key.Digest, f.Err); jerr != nil {
				s.warnf("serve: sweep %s: %v", sw.id, jerr)
			}
		}
		s.rep.CellFailed()
		s.rep.CellDone(false)
		if sw.complete(i, nil, false, &f) {
			s.finalize(sw)
		}
		return
	}
	if sw.journal != nil && key.Digest != "" {
		if jerr := sw.journal.RecordDone(i, key.Digest); jerr != nil {
			s.warnf("serve: sweep %s: %v", sw.id, jerr)
		}
	}
	s.rep.CellDone(hit)
	if sw.complete(i, r, hit, nil) {
		s.finalize(sw)
	}
}

// finalize runs once per sweep, on its finishing completion: the submit
// record goes away (a restart must not resubmit a finished sweep) and
// the journal closes, releasing the sweep lock. The journal files stay —
// they are what makes an identical future submission resume instantly.
func (s *Server) finalize(sw *sweep) {
	sw.mu.Lock()
	j := sw.journal
	sw.journal = nil
	sw.mu.Unlock()
	if j == nil {
		return
	}
	os.Remove(filepath.Join(j.Dir(), submitName))
	if err := j.Close(); err != nil {
		s.warnf("serve: sweep %s: closing journal: %v", sw.id, err)
	}
}

// get looks a sweep up by ID.
func (s *Server) get(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sweeps/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a structured JSON error. *RequestError keeps its
// field attribution; anything else becomes a bare message.
func writeError(w http.ResponseWriter, status int, err error) {
	var re *RequestError
	if !errors.As(err, &re) {
		re = &RequestError{Msg: err.Error()}
	}
	writeJSON(w, status, re)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", maxRequestBody))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := DecodeSweepRequest(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.DryRun {
		grid, gerr := req.Grid()
		if gerr != nil {
			writeError(w, http.StatusBadRequest, gerr)
			return
		}
		d, derr := s.eng.DryRunGrid(grid)
		if derr != nil {
			writeError(w, http.StatusInternalServerError, derr)
			return
		}
		writeJSON(w, http.StatusOK, d)
		return
	}
	sw, created, err := s.submit(req)
	if err != nil {
		var oe *OverloadError
		switch {
		case errors.As(err, &oe):
			w.Header().Set("Retry-After", strconv.Itoa(oe.RetrySeconds))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	status := http.StatusOK // idempotent resubmission of a known sweep
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, sw.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*sweep, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]SweepStatus, len(list))
	for i, sw := range list {
		out[i] = sw.status()
	}
	writeJSON(w, http.StatusOK, struct {
		Sweeps []SweepStatus `json:"sweeps"`
	}{out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

// handleEvents streams per-cell completions from ?cursor= onward:
// NDJSON by default, SSE when the client asks for text/event-stream.
// The stream ends when the sweep finishes; a disconnected client
// resumes by passing the last seq it saw plus one.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", r.PathValue("id")))
		return
	}
	cursor := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, badRequest("cursor", "%q is not a non-negative integer", c))
			return
		}
		cursor = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		ev, more := sw.next(r.Context(), cursor)
		if !more {
			return
		}
		cursor = ev.Seq + 1
		if sse {
			fmt.Fprintf(w, "id: %d\nevent: cell\ndata: ", ev.Seq)
		}
		if err := enc.Encode(ev); err != nil {
			return
		}
		if sse {
			fmt.Fprint(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", r.PathValue("id")))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ascii"
	}
	if !campaign.ValidArtifactFormat(format) {
		writeError(w, http.StatusBadRequest, badRequest("format", "%q is not one of %v", format, campaign.ArtifactFormats))
		return
	}
	if !sw.isFinished() {
		st := sw.status()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(struct {
			Msg  string      `json:"error"`
			Info SweepStatus `json:"status"`
		}{"sweep is still running; stream /events or retry when finished", st})
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := campaign.WriteArtifact(w, format, sw.artifact()); err != nil {
		s.warnf("serve: sweep %s: writing artifact: %v", sw.id, err)
	}
}

// handleMetrics is the Prometheus text endpoint: build identity, fleet
// throughput/utilization from the shared reporter, scheduler load, and
// per-sweep progress.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.info.WritePrometheus(w, "grpserve")
	s.rep.Snapshot().WritePrometheusPrefixed(w, "grpserve")
	queued, inflight := s.sched.load()
	fmt.Fprintf(w, "# TYPE grpserve_queue_depth gauge\ngrpserve_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# TYPE grpserve_cells_inflight gauge\ngrpserve_cells_inflight %d\n", inflight)
	cs := s.eng.CacheStats()
	fmt.Fprintf(w, "# TYPE grpserve_cells_deduped counter\ngrpserve_cells_deduped %d\n", cs.Deduped)
	fmt.Fprintf(w, "# TYPE grpserve_simulations_total counter\ngrpserve_simulations_total %d\n", s.eng.Simulations())

	s.mu.Lock()
	list := make([]*sweep, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.sweeps[id])
	}
	s.mu.Unlock()
	fmt.Fprint(w, "# TYPE grpserve_sweep_cells_done gauge\n")
	for _, sw := range list {
		st := sw.status()
		fmt.Fprintf(w, "grpserve_sweep_cells_done{sweep=%q,tenant=%q,total=\"%d\"} %d\n",
			st.ID, st.Tenant, st.Cells, st.Done)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.sched.load()
	s.mu.Lock()
	n := len(s.sweeps)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		OK       bool `json:"ok"`
		Sweeps   int  `json:"sweeps"`
		Queued   int  `json:"queued"`
		Inflight int  `json:"inflight"`
	}{true, n, queued, inflight})
}
