package serve

import (
	"errors"
	"sync"
	"testing"
)

// stubSweep builds a sweep with n cells and the given weight without
// touching the engine (the scheduler only reads req.Weight and identity).
func stubSweep(id string, n, weight int) (*sweep, []int) {
	sw := &sweep{id: id, req: SweepRequest{Tenant: id, Weight: weight}}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	return sw, pending
}

// dispatchOrder runs a single-worker scheduler over pre-submitted sweeps
// and returns the dispatch sequence as sweep IDs. One worker makes the
// WRR rotation the only source of order, so the sequence is exact.
func dispatchOrder(t *testing.T, submit func(s *scheduler)) []string {
	t.Helper()
	var mu sync.Mutex
	var order []string
	var s *scheduler
	total := 0
	done := make(chan struct{})
	s = newScheduler(1, 1<<20, func(sw *sweep, i int) {
		mu.Lock()
		order = append(order, sw.id)
		n := len(order)
		mu.Unlock()
		if n == total {
			close(done)
		}
	})
	submit(s)
	total = func() int { q, _ := s.load(); return q }()
	s.start()
	<-done
	s.drain()
	return order
}

// TestSchedulerFairSmallVsLarge is the fairness contract: a 4-cell sweep
// submitted alongside a 10× larger one interleaves from the start and
// finishes within its first rotations instead of queueing behind all 40
// large-sweep cells.
func TestSchedulerFairSmallVsLarge(t *testing.T) {
	order := dispatchOrder(t, func(s *scheduler) {
		large, lp := stubSweep("large", 40, 1)
		small, sp := stubSweep("small", 4, 1)
		if err := s.submit(large, lp); err != nil {
			t.Fatal(err)
		}
		if err := s.submit(small, sp); err != nil {
			t.Fatal(err)
		}
	})
	if len(order) != 44 {
		t.Fatalf("dispatched %d cells, want 44", len(order))
	}
	lastSmall := -1
	for i, id := range order {
		if id == "small" {
			lastSmall = i
		}
	}
	// Weight-1 WRR alternates large,small,... — the small sweep's 4th
	// cell dispatches by position 7. Allow slack for rotation boundary
	// effects but fail hard if the small sweep waited behind the large.
	if lastSmall > 8 {
		t.Fatalf("small sweep's last cell dispatched at position %d of 44; order: %v",
			lastSmall, order[:12])
	}
}

// TestSchedulerWeightedShares: a weight-3 sweep receives three slots per
// rotation against a weight-1 peer.
func TestSchedulerWeightedShares(t *testing.T) {
	order := dispatchOrder(t, func(s *scheduler) {
		heavy, hp := stubSweep("heavy", 30, 3)
		light, lp := stubSweep("light", 30, 1)
		if err := s.submit(heavy, hp); err != nil {
			t.Fatal(err)
		}
		if err := s.submit(light, lp); err != nil {
			t.Fatal(err)
		}
	})
	// In the first 16 dispatches (4 full rotations of 3+1), heavy should
	// hold a 3:1 share: 12 heavy, 4 light.
	heavyN := 0
	for _, id := range order[:16] {
		if id == "heavy" {
			heavyN++
		}
	}
	if heavyN != 12 {
		t.Fatalf("heavy got %d of the first 16 slots, want 12; order: %v", heavyN, order[:16])
	}
}

// TestSchedulerBackpressure: admission past MaxQueue fails with a typed
// overload error carrying a Retry-After estimate, and capacity freed by
// dispatch re-opens admission.
func TestSchedulerBackpressure(t *testing.T) {
	s := newScheduler(1, 4, func(sw *sweep, i int) {})
	big, bp := stubSweep("big", 5, 1)
	err := s.submit(big, bp)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("oversized submission returned %v, want *OverloadError", err)
	}
	if oe.RetrySeconds < 1 {
		t.Fatalf("Retry-After estimate %d, want >= 1", oe.RetrySeconds)
	}
	ok, op := stubSweep("ok", 4, 1)
	if err := s.submit(ok, op); err != nil {
		t.Fatalf("within-limit submission rejected: %v", err)
	}
	if q, _ := s.load(); q != 4 {
		t.Fatalf("queued = %d, want 4", q)
	}
}

// TestSchedulerDrainStopsDispatch: drain lets no queued cell dispatch
// afterwards and rejects new submissions.
func TestSchedulerDrainStopsDispatch(t *testing.T) {
	var mu sync.Mutex
	ran := 0
	s := newScheduler(2, 1000, func(sw *sweep, i int) {
		mu.Lock()
		ran++
		mu.Unlock()
	})
	// Drain before start: workers must exit without dispatching anything.
	sw, pending := stubSweep("sw", 50, 1)
	if err := s.submit(sw, pending); err != nil {
		t.Fatal(err)
	}
	s.drain()
	s.start()
	s.wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if ran != 0 {
		t.Fatalf("%d cells dispatched after drain", ran)
	}
	if err := s.submit(sw, pending); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit returned %v, want ErrDraining", err)
	}
}
