package serve

import (
	"context"
	"sync"
	"time"

	"grp/internal/campaign"
	"grp/internal/core"
)

// CellEvent is one per-cell completion on a sweep's event stream. Seq is
// the completion-order cursor a disconnected client resumes from: events
// are appended in the order cells finish (which varies with scheduling),
// while Index is the cell's canonical grid position (which never does).
type CellEvent struct {
	Seq   int              `json:"seq"`
	Index int              `json:"index"`
	Cell  campaign.CellOut `json:"cell"`
	Done  int              `json:"done"`
	Total int              `json:"total"`
}

// SweepStatus is the JSON shape of one sweep in listings and GETs.
type SweepStatus struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Weight   int     `json:"weight"`
	Spec     string  `json:"spec"`
	Factor   string  `json:"factor"`
	Policy   string  `json:"policy"`
	Cells    int     `json:"cells"`
	Done     int     `json:"done"`
	Failed   int     `json:"failed"`
	Hits     int     `json:"cache_hits"`
	Finished bool    `json:"finished"`
	Progress float64 `json:"progress"`
	Resumed  int     `json:"resumed,omitempty"` // journaled completions inherited at admission
	Created  string  `json:"created"`
}

// sweep is the server-side state of one admitted submission: the
// expanded grid, the positional results filling in as cells land, and
// the completion-ordered event log streamed to subscribers.
type sweep struct {
	id      string
	req     SweepRequest
	grid    *campaign.Grid
	jobs    []campaign.Job
	keys    []campaign.CellKey
	journal *campaign.Journal // nil when another live sweep owns this content, or mem backend
	resumed int
	created time.Time

	mu       sync.Mutex
	results  []*core.Result
	seen     []bool                 // per-cell completion guard
	failures []campaign.CellFailure // appended in completion order; sorted at render
	events   []CellEvent
	done     int
	hits     int
	finished bool
	// wake is closed and replaced on every append, so any number of
	// event-stream tails can wait for "something new" without polling.
	wake chan struct{}
}

func newSweep(id string, req SweepRequest, grid *campaign.Grid, jobs []campaign.Job, keys []campaign.CellKey) *sweep {
	return &sweep{
		id:      id,
		req:     req,
		grid:    grid,
		jobs:    jobs,
		keys:    keys,
		created: time.Now().UTC(),
		results: make([]*core.Result, len(jobs)),
		seen:    make([]bool, len(jobs)),
		// An empty grid (a spec whose filters match nothing) is born
		// finished; no completion will ever arrive to flip it.
		finished: len(jobs) == 0,
		wake:     make(chan struct{}),
	}
}

// isFinished reports whether every cell has completed.
func (s *sweep) isFinished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}

// complete records the outcome of cell i and wakes stream tails. hit
// marks a cache or dedup hit; fail, when non-nil, is a keep-going
// failure (the server never aborts a sweep on one cell). It returns
// true exactly once: on the completion that finishes the sweep, so the
// caller runs finalization (journal close, submit-record removal) from
// a single worker.
func (s *sweep) complete(i int, r *core.Result, hit bool, fail *campaign.CellFailure) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[i] {
		return false // duplicate completion; first one wins
	}
	s.seen[i] = true
	var out campaign.CellOut
	if fail != nil {
		s.failures = append(s.failures, *fail)
		out = campaign.NewCellOut(s.grid, i, nil)
		out.Error = fail.Err
	} else {
		s.results[i] = r
		out = campaign.NewCellOut(s.grid, i, r)
	}
	s.done++
	if hit {
		s.hits++
	}
	s.events = append(s.events, CellEvent{
		Seq: len(s.events), Index: i, Cell: out,
		Done: s.done, Total: len(s.jobs),
	})
	finishedNow := false
	if s.done == len(s.jobs) {
		s.finished = true
		finishedNow = true
	}
	close(s.wake)
	s.wake = make(chan struct{})
	return finishedNow
}

// status snapshots the sweep for listings.
func (s *sweep) status() SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SweepStatus{
		ID: s.id, Tenant: s.req.Tenant, Weight: s.req.Weight,
		Spec: s.req.Spec, Factor: s.req.Factor, Policy: s.req.Policy,
		Cells: len(s.jobs), Done: s.done, Failed: len(s.failures),
		Hits: s.hits, Finished: s.finished, Resumed: s.resumed,
		Created: s.created.Format(time.RFC3339),
	}
	if n := len(s.jobs); n > 0 {
		st.Progress = float64(s.done) / float64(n)
	}
	return st
}

// artifact renders the finished sweep. The caller must have checked
// finished; rendering mid-flight would bake in nil rows.
func (s *sweep) artifact() *campaign.Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The artifact's failure order is canonical (by grid index), like a
	// keep-going CLI run's, whatever order the failures landed in.
	failures := make([]campaign.CellFailure, len(s.failures))
	copy(failures, s.failures)
	for i := 1; i < len(failures); i++ {
		for j := i; j > 0 && failures[j].Index < failures[j-1].Index; j-- {
			failures[j], failures[j-1] = failures[j-1], failures[j]
		}
	}
	return &campaign.Artifact{
		Spec:     s.req.Spec,
		Factor:   s.req.Factor,
		Policy:   s.req.Policy,
		Grid:     s.grid,
		Results:  s.results,
		Failures: failures,
	}
}

// next returns the event at cursor, waiting for it to exist. ok=false
// means the sweep finished before (or at) the cursor — the stream is
// complete — or ctx ended first.
func (s *sweep) next(ctx context.Context, cursor int) (CellEvent, bool) {
	for {
		s.mu.Lock()
		if cursor < len(s.events) {
			ev := s.events[cursor]
			s.mu.Unlock()
			return ev, true
		}
		if s.finished {
			s.mu.Unlock()
			return CellEvent{}, false
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return CellEvent{}, false
		}
	}
}
