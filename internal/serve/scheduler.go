package serve

import (
	"fmt"
	"sync"
)

// The scheduler multiplexes every admitted sweep onto one shared bounded
// worker pool with per-tenant fairness and backpressure. Fairness is
// weighted round-robin across the *active* sweeps: the rotation offers
// each sweep up to `weight` worker slots per turn, so a 4-cell sweep
// submitted while a 1000-cell sweep is in flight interleaves from the
// next dispatch on and finishes after ~2 rotations instead of queueing
// behind a thousand cells. Backpressure is a bound on the total queued
// (admitted but not yet dispatched) cells: past it, submissions are
// rejected with ErrOverloaded, which the HTTP layer turns into 429 +
// Retry-After — clients size their retry instead of piling onto a
// server that cannot absorb them.

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = fmt.Errorf("serve: server is draining")

// OverloadError rejects a submission that would overflow the admission
// queue. RetrySeconds is the server's estimate of when capacity frees.
type OverloadError struct {
	Queued       int
	Limit        int
	RetrySeconds int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: admission queue full (%d cells queued, limit %d); retry in %ds",
		e.Queued, e.Limit, e.RetrySeconds)
}

// scheduler is the shared pool. runCell is injected by the server (and
// by tests, which substitute a stub to probe fairness deterministically).
type scheduler struct {
	workers  int
	maxQueue int
	runCell  func(sw *sweep, i int)

	mu       sync.Mutex
	cond     *sync.Cond
	active   []*schedEntry // rotation order; entries leave when empty
	rr       int           // rotation position
	credit   int           // remaining slots in the current entry's turn
	queued   int           // total undispatched cells across entries
	inflight int           // cells handed to workers, not yet finished
	draining bool
	wg       sync.WaitGroup
}

// schedEntry is one sweep's pending-cell queue in the rotation.
type schedEntry struct {
	sw      *sweep
	pending []int // cell indices awaiting dispatch, front first
	next    int   // pending[next:] remain
}

func newScheduler(workers, maxQueue int, runCell func(*sweep, int)) *scheduler {
	s := &scheduler{workers: workers, maxQueue: maxQueue, runCell: runCell}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// start launches the worker pool.
func (s *scheduler) start() {
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				sw, i, ok := s.pick()
				if !ok {
					return
				}
				s.runCell(sw, i)
				s.mu.Lock()
				s.inflight--
				s.mu.Unlock()
			}
		}()
	}
}

// submit admits a sweep's cells (all of them; cells already journaled as
// done still dispatch and resolve as cache hits). pending carries the
// cell indices to schedule.
func (s *scheduler) submit(sw *sweep, pending []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.queued+len(pending) > s.maxQueue {
		retry := 1 + s.queued/max(1, s.workers*cellsPerWorkerSecond)
		return &OverloadError{Queued: s.queued, Limit: s.maxQueue, RetrySeconds: retry}
	}
	s.active = append(s.active, &schedEntry{sw: sw, pending: pending})
	s.queued += len(pending)
	s.cond.Broadcast()
	return nil
}

// cellsPerWorkerSecond is the Retry-After throughput guess when the
// server has no live rate yet. It only shapes the hint, never admission.
const cellsPerWorkerSecond = 2

// pick blocks until a cell is available and claims it, returning
// ok=false when the scheduler is draining (workers exit; undispatched
// cells stay queued for the journal to resume after restart).
func (s *scheduler) pick() (*sweep, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil, 0, false
		}
		if len(s.active) > 0 {
			if s.rr >= len(s.active) {
				s.rr = 0
				s.credit = 0
			}
			e := s.active[s.rr]
			if s.credit <= 0 {
				s.credit = max(1, e.sw.req.Weight)
			}
			i := e.pending[e.next]
			e.next++
			s.credit--
			s.queued--
			s.inflight++
			if e.next >= len(e.pending) {
				// Sweep fully dispatched: leave the rotation. The entry
				// after it slides into this slot, so rr stays put.
				s.active = append(s.active[:s.rr], s.active[s.rr+1:]...)
				s.credit = 0
			} else if s.credit <= 0 {
				s.rr++
				if s.rr >= len(s.active) {
					s.rr = 0
				}
			}
			return e.sw, i, true
		}
		s.cond.Wait()
	}
}

// drain stops dispatching: workers finish their in-flight cells and
// exit; queued cells remain journaled-undone for a restart to resume.
// Returns once the pool is idle.
func (s *scheduler) drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// load reports (queued, inflight) for metrics and health.
func (s *scheduler) load() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.inflight
}
