package workloads

import (
	"grp/internal/compiler"
	"grp/internal/lang"
	"grp/internal/mem"
)

// specMcf proxies 181.mcf: a sequential reset of a field in every object
// of a heap arc array (the loop the paper notes pointer prefetching
// accelerates), followed by repeated root-to-leaf searches of a binary
// tree whose nodes sit at shuffled addresses (Table 6: "tree traversal").
func specMcf() *Spec {
	return &Spec{
		Name:      "mcf",
		CBench:    true,
		MissCause: "tree traversal",
		Build: func(f Factor) *Built {
			nArcs := pick[int64](f, 1<<11, 1<<14, 1<<16)
			nNodes := pick(f, 1<<11, 1<<14, 1<<16)
			nQueries := pick[int64](f, 256, 1024, 8192)

			arc := lang.NewStruct("arc",
				lang.Field{Name: "cost", Type: lang.I64},
				lang.Field{Name: "flow", Type: lang.I64},
				lang.Field{Name: "tail", Type: lang.PtrT{Elem: lang.I64}},
			)
			node := lang.NewStruct("node",
				lang.Field{Name: "key", Type: lang.I64},
			)
			// The l/r fields must reference the node type itself; patch
			// them in after construction.
			node.Fields = append(node.Fields,
				lang.Field{Name: "l", Type: lang.PtrT{Elem: node}, Offset: 8},
				lang.Field{Name: "r", Type: lang.PtrT{Elem: node}, Offset: 16},
			)
			setStructSize(node, 24)

			arcs := &lang.Array{Name: "arcs", Elem: lang.PtrT{Elem: arc}, Dims: []int64{nArcs}, Heap: true}
			rootA := &lang.Array{Name: "root", Elem: lang.PtrT{Elem: node}, Dims: []int64{1}, Heap: true}
			keys := &lang.Array{Name: "keys", Elem: lang.I64, Dims: []int64{nQueries}}

			p := &lang.Program{
				Name:    "mcf",
				Arrays:  []*lang.Array{arcs, rootA, keys},
				Scalars: []string{"i", "q", "a", "p", "key", "k", "acc"},
				Body: []lang.Stmt{
					// Phase 1: reset flow in every arc through the pointer
					// array (spatial + pointer hints on arcs[i]).
					&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(nArcs), Step: 1, Body: []lang.Stmt{
						&lang.Assign{Dst: lang.S("a"), Src: lang.Ix(arcs, lang.S("i"))},
						&lang.Assign{
							Dst: &lang.FieldRef{Ptr: lang.S("a"), Struct: arc, Field: "flow"},
							Src: lang.C(0),
						},
					}},
					// Phase 2: repeated tree searches (recursive pointer
					// hints on p = p->l / p = p->r).
					&lang.For{Var: "q", Lo: lang.C(0), Hi: lang.C(nQueries), Step: 1, Body: []lang.Stmt{
						&lang.Assign{Dst: lang.S("key"), Src: lang.Ix(keys, lang.S("q"))},
						&lang.Assign{Dst: lang.S("p"), Src: lang.Ix(rootA, lang.C(0))},
						&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)), Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("k"), Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: node, Field: "key"}},
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"), lang.S("k"))},
							&lang.If{
								Cond: lang.B(lang.Lt, lang.S("key"), lang.S("k")),
								Then: []lang.Stmt{&lang.Assign{Dst: lang.S("p"),
									Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: node, Field: "l"}}},
								Else: []lang.Stmt{&lang.Assign{Dst: lang.S("p"),
									Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: node, Field: "r"}}},
							},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(11)
					// Arc objects in allocation order (contiguous heap).
					arcAddrs := allocNodes(m, arc, int(nArcs), false, 0, r)
					for i, a := range arcAddrs {
						m.Write64(lay.Addr["arcs"]+uint64(i*8), a)
						m.Write64(a, uint64(r.intn(1000))) // cost
					}
					// Balanced BST over shuffled node placements.
					nodeAddrs := allocNodes(m, node, nNodes, true, 40, r)
					keysSorted := make([]int64, nNodes)
					for i := range keysSorted {
						keysSorted[i] = int64(i) * 7
					}
					root := buildBST(m, node, nodeAddrs, keysSorted, 0, nNodes-1)
					m.Write64(lay.Addr["root"], root)
					for q := int64(0); q < nQueries; q++ {
						m.Write64(lay.Addr["keys"]+uint64(q*8), int64ToU64(keysSorted[r.intn(nNodes)]))
					}
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// buildBST writes a balanced tree over keys[lo..hi] into the next unused
// node addresses (consumed depth-first) and returns the subtree root.
func buildBST(m *mem.Memory, node *lang.StructT, addrs []uint64, keys []int64, lo, hi int) uint64 {
	_ = node
	var next int
	var rec func(lo, hi int) uint64
	rec = func(lo, hi int) uint64 {
		if lo > hi {
			return 0
		}
		mid := (lo + hi) / 2
		a := addrs[next]
		next++
		m.Write64(a+0, int64ToU64(keys[mid]))
		l := rec(lo, mid-1)
		r := rec(mid+1, hi)
		m.Write64(a+8, l)
		m.Write64(a+16, r)
		return a
	}
	return rec(lo, hi)
}

func int64ToU64(v int64) uint64 { return uint64(v) }

// setStructSize force-sets a struct's size after manual field patching.
func setStructSize(s *lang.StructT, size int64) { lang.SetStructSize(s, size) }

// specEquake proxies 183.equake: heap arrays of row pointers accessed
// buf[i][j] (paper Figure 4); the row-pointer loads earn both spatial and
// pointer hints, which is exactly where the paper says equake's pointer-
// prefetching gain comes from.
func specEquake() *Spec {
	return &Spec{
		Name:      "equake",
		FP:        true,
		CBench:    true,
		MissCause: "heap arrays of row pointers",
		Build: func(f Factor) *Built {
			rows := pick[int64](f, 1<<9, 1<<11, 1<<13)
			cols := int64(512)
			buf := &lang.Array{Name: "buf", Elem: lang.PtrT{Elem: lang.I64}, Dims: []int64{rows}, Heap: true}
			p := &lang.Program{
				Name:    "equake",
				Arrays:  []*lang.Array{buf},
				Scalars: []string{"r", "i", "j", "row", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(rows), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("row"), Src: lang.Ix(buf, lang.S("i"))},
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(cols), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									&lang.PtrIndex{Ptr: lang.S("row"), Elem: lang.I64, Idx: lang.S("j")})},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(12)
					for i := int64(0); i < rows; i++ {
						rowAddr := m.Alloc(uint64(cols*8), 64)
						m.Write64(lay.Addr["buf"]+uint64(i*8), rowAddr)
						for j := int64(0); j < cols; j++ {
							m.Write64(rowAddr+uint64(j*8), r.next()>>40)
						}
					}
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specAmmp proxies 188.ammp: repeated traversal of a linked list of atom
// records scattered through a fragmented heap (Table 6: "linked list
// traversal"). Each atom carries a neighbor list — forward pointers to the
// next few atoms in traversal order, as molecular-dynamics neighbor lists
// do — so GRP's recursive pointer scanning fans out several nodes ahead
// per miss, while SRP's 4 KB regions fetch mostly unrelated heap (the
// paper measures SRP at 14x ammp's baseline traffic with *negative*
// coverage).
func specAmmp() *Spec {
	return &Spec{
		Name:      "ammp",
		FP:        true,
		CBench:    true,
		MissCause: "linked list traversal",
		Build: func(f Factor) *Built {
			n := pick(f, 1<<11, 1<<14, 1<<16)
			atom := lang.NewStruct("atom",
				lang.Field{Name: "x", Type: lang.I64},
				lang.Field{Name: "y", Type: lang.I64},
				lang.Field{Name: "z", Type: lang.I64},
				lang.Field{Name: "q", Type: lang.I64},
			)
			atom.Fields = append(atom.Fields,
				lang.Field{Name: "next", Type: lang.PtrT{Elem: atom}, Offset: 32},
				lang.Field{Name: "nb1", Type: lang.PtrT{Elem: atom}, Offset: 40},
				lang.Field{Name: "nb2", Type: lang.PtrT{Elem: atom}, Offset: 48},
				lang.Field{Name: "nb3", Type: lang.PtrT{Elem: atom}, Offset: 56},
				lang.Field{Name: "nb4", Type: lang.PtrT{Elem: atom}, Offset: 64},
			)
			setStructSize(atom, 72)
			headA := &lang.Array{Name: "head", Elem: lang.PtrT{Elem: atom}, Dims: []int64{1}, Heap: true}
			p := &lang.Program{
				Name:    "ammp",
				Arrays:  []*lang.Array{headA},
				Scalars: []string{"r", "a", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						&lang.Assign{Dst: lang.S("a"), Src: lang.Ix(headA, lang.C(0))},
						&lang.While{Cond: lang.B(lang.Ne, lang.S("a"), lang.C(0)), Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
								lang.B(lang.Add,
									&lang.FieldRef{Ptr: lang.S("a"), Struct: atom, Field: "x"},
									&lang.FieldRef{Ptr: lang.S("a"), Struct: atom, Field: "q"}))},
							&lang.Assign{Dst: lang.S("a"),
								Src: &lang.FieldRef{Ptr: lang.S("a"), Struct: atom, Field: "next"}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(13)
					// Scattered atoms in a fragmented heap.
					nodes := allocNodes(m, atom, n, true, 56, r)
					for i, a := range nodes {
						m.Write64(a, r.next()>>40)
						m.Write64(a+24, r.next()>>40)
						// Neighbor list: forward pointers along the
						// traversal order.
						for k := 1; k <= 4; k++ {
							var nb uint64
							if i+1+k < n {
								nb = nodes[i+1+k]
							}
							m.Write64(a+uint64(32+8*k), nb)
						}
					}
					linkList(m, nodes, 32)
					m.Write64(lay.Addr["head"], nodes[0])
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specParser proxies 197.parser: many short linked lists at shuffled
// addresses reached through a sequentially scanned head array, a mix of
// spatial head loads and low-locality recursive chases.
func specParser() *Spec {
	return &Spec{
		Name:      "parser",
		CBench:    true,
		MissCause: "short shuffled linked lists",
		Build: func(f Factor) *Built {
			lists := pick[int64](f, 1<<8, 1<<10, 1<<12)
			perList := pick(f, 8, 12, 16)
			word := lang.NewStruct("word",
				lang.Field{Name: "val", Type: lang.I64},
			)
			word.Fields = append(word.Fields, lang.Field{Name: "next", Type: lang.PtrT{Elem: word}, Offset: 8})
			setStructSize(word, 16)
			heads := &lang.Array{Name: "heads", Elem: lang.PtrT{Elem: word}, Dims: []int64{lists}, Heap: true}
			p := &lang.Program{
				Name:    "parser",
				Arrays:  []*lang.Array{heads},
				Scalars: []string{"r", "q", "p", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "q", Lo: lang.C(0), Hi: lang.C(lists), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("p"), Src: lang.Ix(heads, lang.S("q"))},
							&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)), Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									&lang.FieldRef{Ptr: lang.S("p"), Struct: word, Field: "val"})},
								&lang.Assign{Dst: lang.S("p"),
									Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: word, Field: "next"}},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(14)
					all := allocNodes(m, word, int(lists)*perList, true, 48, r)
					for i, a := range all {
						m.Write64(a, uint64(i))
					}
					for li := int64(0); li < lists; li++ {
						chunk := all[li*int64(perList) : (li+1)*int64(perList)]
						linkList(m, chunk, 8)
						m.Write64(lay.Addr["heads"]+uint64(li*8), chunk[0])
					}
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specGap proxies 254.gap: an arena of records walked with an induction
// pointer (paper Figure 5), with an embedded pointer hop per record; the
// arena scan earns spatial hints, the hop targets earn pointer hints.
func specGap() *Spec {
	return &Spec{
		Name:      "gap",
		CBench:    true,
		MissCause: "arena scan with pointer hops",
		Build: func(f Factor) *Built {
			n := pick(f, 1<<11, 1<<14, 1<<16)
			rec := lang.NewStruct("rec",
				lang.Field{Name: "a", Type: lang.I64},
				lang.Field{Name: "b", Type: lang.I64},
			)
			rec.Fields = append(rec.Fields, lang.Field{Name: "ptr", Type: lang.PtrT{Elem: rec}, Offset: 16})
			setStructSize(rec, 24)
			bounds := &lang.Array{Name: "bounds", Elem: lang.PtrT{Elem: rec}, Dims: []int64{2}, Heap: true}
			p := &lang.Program{
				Name:    "gap",
				Arrays:  []*lang.Array{bounds},
				Scalars: []string{"r", "rp", "end", "q", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						&lang.Assign{Dst: lang.S("rp"), Src: lang.Ix(bounds, lang.C(0))},
						&lang.Assign{Dst: lang.S("end"), Src: lang.Ix(bounds, lang.C(1))},
						&lang.While{Cond: lang.B(lang.Lt, lang.S("rp"), lang.S("end")), Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
								&lang.FieldRef{Ptr: lang.S("rp"), Struct: rec, Field: "a"})},
							&lang.Assign{Dst: lang.S("q"),
								Src: &lang.FieldRef{Ptr: lang.S("rp"), Struct: rec, Field: "ptr"}},
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
								&lang.FieldRef{Ptr: lang.S("q"), Struct: rec, Field: "b"})},
							&lang.Assign{Dst: lang.S("rp"), Src: lang.B(lang.Add, lang.S("rp"), lang.C(24))},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(15)
					nodes := allocNodes(m, rec, n, false, 0, r)
					for _, a := range nodes {
						m.Write64(a, r.next()>>40)
						m.Write64(a+8, r.next()>>40)
						// Pointer hop to a nearby record: gap's workspace
						// pointers mostly reference recently created data.
						m.Write64(a+16, nodes[r.intn(n)])
					}
					m.Write64(lay.Addr["bounds"], nodes[0])
					m.Write64(lay.Addr["bounds"]+8, nodes[n-1]+24)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specTwolf proxies 300.twolf: long linked lists at shuffled addresses
// plus a random pointer hop per node (Table 6: "linked list and random
// pointers"); spatial schemes find nothing here and SRP's regions are pure
// waste.
func specTwolf() *Spec {
	return &Spec{
		Name:      "twolf",
		CBench:    true,
		MissCause: "linked list and random pointers",
		Build: func(f Factor) *Built {
			// The touched set must decisively exceed the 1 MB L2 so reuse
			// misses persist across traversals.
			n := pick(f, 1<<11, 3<<13, 1<<16)
			cell := lang.NewStruct("cell",
				lang.Field{Name: "x", Type: lang.I64},
			)
			cell.Fields = append(cell.Fields,
				lang.Field{Name: "next", Type: lang.PtrT{Elem: cell}, Offset: 8},
				lang.Field{Name: "buddy", Type: lang.PtrT{Elem: cell}, Offset: 16},
			)
			setStructSize(cell, 24)
			headA := &lang.Array{Name: "head", Elem: lang.PtrT{Elem: cell}, Dims: []int64{1}, Heap: true}
			p := &lang.Program{
				Name:    "twolf",
				Arrays:  []*lang.Array{headA},
				Scalars: []string{"r", "p", "b", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						&lang.Assign{Dst: lang.S("p"), Src: lang.Ix(headA, lang.C(0))},
						&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)), Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("b"),
								Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: cell, Field: "buddy"}},
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
								&lang.FieldRef{Ptr: lang.S("b"), Struct: cell, Field: "x"})},
							&lang.Assign{Dst: lang.S("p"),
								Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: cell, Field: "next"}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(16)
					nodes := allocNodes(m, cell, n, true, 72, r)
					for _, a := range nodes {
						m.Write64(a, r.next()>>40)
						m.Write64(a+16, nodes[r.intn(n)]) // buddy: random hop
					}
					linkList(m, nodes, 8)
					m.Write64(lay.Addr["head"], nodes[0])
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}
