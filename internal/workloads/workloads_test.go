package workloads

import (
	"testing"

	"grp/internal/compiler"
	"grp/internal/lang"
	"grp/internal/mem"
)

func TestAllBuildValidateCompile(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			b := spec.Build(Test)
			if err := b.Prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			m := mem.New()
			prog, lay, _, err := compiler.CompileWorkload(b.Prog, m, compiler.PolicyDefault)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			b.Init(m, lay)
			if err := prog.Validate(); err != nil {
				t.Fatalf("compiled program invalid: %v", err)
			}
			if b.MaxInstrs == 0 {
				t.Error("MaxInstrs must be set")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
	if len(Names()) != 18 {
		t.Errorf("expected 18 benchmarks, got %d", len(Names()))
	}
}

// TestExpectedHintClasses asserts each proxy generates the hint classes the
// paper's Table 3 shows for its namesake.
func TestExpectedHintClasses(t *testing.T) {
	type expect struct {
		spatial, pointer, recursive, indirect bool
	}
	cases := map[string]expect{
		"gzip":    {spatial: true},
		"wupwise": {spatial: true},
		"swim":    {spatial: true},
		"mgrid":   {spatial: true},
		"applu":   {spatial: true},
		"vpr":     {spatial: true, indirect: true},
		"mesa":    {spatial: true, pointer: true},
		"art":     {spatial: true},
		"mcf":     {spatial: true, pointer: true, recursive: true},
		"equake":  {spatial: true, pointer: true},
		"ammp":    {pointer: true, recursive: true},
		"parser":  {spatial: true, pointer: true, recursive: true},
		"gap":     {spatial: true, pointer: true},
		"bzip2":   {spatial: true, indirect: true},
		"twolf":   {pointer: true, recursive: true},
		"apsi":    {spatial: true},
		"sphinx":  {spatial: true, pointer: true, recursive: true},
	}
	for name, want := range cases {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := spec.Build(Test)
		m := mem.New()
		prog, _, _, err := compiler.CompileWorkload(b.Prog, m, compiler.PolicyDefault)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h := prog.CountHints()
		if (h.Spatial > 0) != want.spatial {
			t.Errorf("%s: spatial hints = %d, want present=%v", name, h.Spatial, want.spatial)
		}
		if (h.Pointer > 0) != want.pointer {
			t.Errorf("%s: pointer hints = %d, want present=%v", name, h.Pointer, want.pointer)
		}
		if (h.Recursive > 0) != want.recursive {
			t.Errorf("%s: recursive hints = %d, want present=%v", name, h.Recursive, want.recursive)
		}
		if (h.Indirect > 0) != want.indirect {
			t.Errorf("%s: indirect instructions = %d, want present=%v", name, h.Indirect, want.indirect)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	spec, _ := ByName("twolf")
	sum := func() uint64 {
		b := spec.Build(Test)
		m := mem.New()
		_, lay, _, err := compiler.CompileWorkload(b.Prog, m, compiler.PolicyDefault)
		if err != nil {
			t.Fatal(err)
		}
		b.Init(m, lay)
		var s uint64
		start, end := m.HeapRange()
		for a := start; a < end && a < start+1<<16; a += 8 {
			s = s*31 + m.Read64(a)
		}
		return s
	}
	if sum() != sum() {
		t.Error("workload initialization is not deterministic")
	}
}

func TestRNG(t *testing.T) {
	r := newRNG(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.next()] = true
	}
	if len(seen) < 990 {
		t.Errorf("rng produced many duplicates: %d distinct", len(seen))
	}
	// perm is a permutation.
	p := newRNG(2).perm(100)
	mark := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || mark[v] {
			t.Fatal("perm is not a permutation")
		}
		mark[v] = true
	}
	// Zero seed is remapped, not a degenerate generator.
	z := newRNG(0)
	if z.next() == z.next() {
		t.Error("zero-seed rng degenerate")
	}
}

func TestFactors(t *testing.T) {
	if Test.String() != "test" || Small.String() != "small" || Full.String() != "full" {
		t.Error("factor strings")
	}
	// Larger factors mean larger programs (check one workload's footprint).
	spec, _ := ByName("wupwise")
	sizes := map[Factor]int64{}
	for _, f := range []Factor{Test, Full} {
		b := spec.Build(f)
		var total int64
		for _, a := range b.Prog.Arrays {
			total += a.Bytes()
		}
		sizes[f] = total
	}
	if sizes[Full] <= sizes[Test] {
		t.Errorf("Full should be larger than Test: %v", sizes)
	}
}

func TestCraftyExcluded(t *testing.T) {
	spec, _ := ByName("crafty")
	if !spec.Exclude {
		t.Error("crafty must be excluded from timing results, as in the paper")
	}
}

func TestLinkList(t *testing.T) {
	m := mem.New()
	st := m.Alloc(64, 8)
	nodes := []uint64{st, st + 16, st + 32}
	linkList(m, nodes, 8)
	if m.Read64(nodes[0]+8) != nodes[1] || m.Read64(nodes[1]+8) != nodes[2] {
		t.Error("links wrong")
	}
	if m.Read64(nodes[2]+8) != 0 {
		t.Error("last node should terminate")
	}
}

func TestAllocNodesShuffleAndGap(t *testing.T) {
	m := mem.New()
	st := mustStruct()
	r := newRNG(5)
	plain := allocNodes(m, st, 16, false, 0, r)
	for i := 1; i < len(plain); i++ {
		if plain[i] <= plain[i-1] {
			t.Fatal("unshuffled nodes should be ascending")
		}
	}
	m2 := mem.New()
	shuffled := allocNodes(m2, st, 64, true, 0, newRNG(5))
	asc := true
	for i := 1; i < len(shuffled); i++ {
		if shuffled[i] <= shuffled[i-1] {
			asc = false
		}
	}
	if asc {
		t.Error("shuffled nodes should not be in address order")
	}
	m3 := mem.New()
	gapped := allocNodes(m3, st, 4, false, 100, newRNG(5))
	if gapped[1]-gapped[0] < uint64(st.Size())+100 {
		t.Error("gap not applied")
	}
}

func mustStruct() *lang.StructT {
	return lang.NewStruct("n", lang.Field{Name: "v", Type: lang.I64})
}
