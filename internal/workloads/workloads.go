// Package workloads defines the benchmark proxy kernels standing in for
// the paper's SPEC CPU2000 + Sphinx evaluation set (see DESIGN.md for the
// substitution argument). Each kernel is written in the lang mini-language
// so the GRP compiler derives every hint by analysis — nothing is
// hand-annotated — and each reproduces the dominant L2-miss pattern the
// paper reports for its namesake (Table 6 and Section 5.5):
//
//	gzip     sliding-window byte copies                 (spatial)
//	wupwise  dense matrix-vector products               (spatial)
//	swim     transposed 2-D stencil sweeps              (transpose access)
//	mgrid    3-D stencil relaxation                     (spatial)
//	applu    3-D wavefront sweeps over several arrays   (spatial)
//	vpr      routing-cost lookups through a net map     (indirect, spatial)
//	mesa     short vertex bursts in a large vertex pool (variable regions)
//	art      repeated streaming of > L2 f32 arrays      (bandwidth bound)
//	mcf      arc-array resets + tree searches           (tree traversal)
//	equake   heap arrays of row pointers, buf[i][j]     (pointer + spatial)
//	crafty   small bitboard tables, negligible misses   (excluded, as paper)
//	ammp     linked atom list in allocation order       (list traversal)
//	parser   shuffled linked lists + dictionary probes  (list traversal)
//	gap      arena of records walked by embedded ptrs   (pointer + spatial)
//	bzip2    scattered indirect block accesses          (indirect)
//	twolf    shuffled lists and random pointer hops     (irregular pointers)
//	apsi     rank-3 Fortran-style array sweeps          (spatial, mixed)
//	sphinx   hash-table probe bursts + overflow chains  (hash lookup)
package workloads

import (
	"fmt"

	"grp/internal/compiler"
	"grp/internal/lang"
	"grp/internal/mem"
)

// Factor scales working-set sizes and iteration counts.
type Factor int

// Scale levels. Test keeps unit tests fast; Full is used by the benchmark
// harness and cmd/grptables.
const (
	Test Factor = iota
	Small
	Full
)

func (f Factor) String() string {
	switch f {
	case Test:
		return "test"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// pick returns the value for the factor.
func pick[T any](f Factor, test, small, full T) T {
	switch f {
	case Test:
		return test
	case Small:
		return small
	default:
		return full
	}
}

// Built is an instantiated workload: a program plus its data initializer.
type Built struct {
	Prog *lang.Program
	// Init populates simulated memory after placement (heap structures,
	// index arrays, initial values).
	Init func(m *mem.Memory, lay *compiler.Layout)
	// MaxInstrs caps simulation length for this kernel.
	MaxInstrs uint64
}

// Spec describes one benchmark proxy.
type Spec struct {
	Name string
	// FP marks the paper's floating-point benchmarks (Figure 11); the
	// rest are integer benchmarks (Figure 10).
	FP bool
	// CBench marks benchmarks written in C in the paper (Figure 9's
	// pointer-prefetching study applies to these).
	CBench bool
	// Exclude marks benchmarks omitted from timing results (crafty: its
	// L2 miss rate is negligible, paper Section 5.1).
	Exclude bool
	// MissCause is the Table 6 classification of remaining misses.
	MissCause string
	Build     func(f Factor) *Built
}

// All returns every workload in the paper's presentation order.
func All() []*Spec {
	return []*Spec{
		specGzip(), specWupwise(), specSwim(), specMgrid(), specApplu(),
		specVpr(), specMesa(), specArt(), specMcf(), specEquake(),
		specCrafty(), specAmmp(), specParser(), specGap(), specBzip2(),
		specTwolf(), specApsi(), specSphinx(),
	}
}

// ByName returns the named workload spec.
func ByName(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names lists all workload names in order.
func Names() []string {
	var ns []string
	for _, s := range All() {
		ns = append(ns, s.Name)
	}
	return ns
}

// ------------------------------------------------------------------ rng --

// rng is a deterministic xorshift64* generator; workloads must not depend
// on Go's runtime randomness so every simulation is reproducible.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// perm returns a deterministic permutation of [0, n).
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// --------------------------------------------------------------- helpers --

// allocNodes allocates n structs of type st on the simulated heap and
// returns their addresses in *traversal* order. With shuffle false the
// traversal order equals allocation order (contiguous addresses, the
// regular allocation pattern the paper notes makes spatial prefetching
// work on pointer codes); with shuffle true the addresses are permuted so
// pointer chasing has no spatial locality (twolf, parser). gap inserts
// dead bytes between allocations, modeling the fragmentation of a real
// mixed heap: region prefetchers then fetch mostly dead space.
func allocNodes(m *mem.Memory, st *lang.StructT, n int, shuffle bool, gap uint64, r *rng) []uint64 {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = m.Alloc(uint64(st.Size()), 8)
		if gap > 0 {
			m.Alloc(gap, 8)
		}
	}
	if shuffle {
		p := r.perm(n)
		out := make([]uint64, n)
		for i := range out {
			out[i] = addrs[p[i]]
		}
		return out
	}
	return addrs
}

// linkList writes next pointers chaining nodes in order, terminating with 0.
func linkList(m *mem.Memory, nodes []uint64, nextOff int64) {
	for i, a := range nodes {
		var nxt uint64
		if i+1 < len(nodes) {
			nxt = nodes[i+1]
		}
		m.Write64(a+uint64(nextOff), nxt)
	}
}
