package workloads

import (
	"grp/internal/compiler"
	"grp/internal/lang"
	"grp/internal/mem"
)

// specVpr proxies 175.vpr: routing-cost accumulation through a net map,
// a[b[i]] with *clustered* index values — the paper notes vpr's indirect
// references show high spatial locality, so SRP keeps up with GRP but at
// ~50% extra traffic.
func specVpr() *Spec {
	return &Spec{
		Name:      "vpr",
		CBench:    true,
		MissCause: "clustered indirect array references",
		Build: func(f Factor) *Built {
			n := pick[int64](f, 1<<12, 1<<14, 1<<17) // nets
			cells := pick[int64](f, 1<<12, 1<<14, 1<<17)
			netmap := &lang.Array{Name: "netmap", Elem: lang.I32, Dims: []int64{n}}
			grid := &lang.Array{Name: "grid", Elem: lang.I64, Dims: []int64{cells}, Heap: true}
			p := &lang.Program{
				Name:    "vpr",
				Arrays:  []*lang.Array{netmap, grid},
				Scalars: []string{"r", "i", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(n), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
								lang.Ix(grid, lang.Ix(netmap, lang.S("i"))))},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(21)
					// Clustered indices: mostly ascending with small jitter,
					// wrapping through the grid.
					base := lay.Addr["netmap"]
					pos := int64(0)
					for i := int64(0); i < n; i++ {
						pos = (pos + int64(r.intn(5))) % cells
						m.Write32(base+uint64(i*4), uint32(pos))
					}
					fillWords(m, lay.Addr["grid"], cells, r)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specBzip2 proxies 256.bzip2: block-sorting accesses a[b[i]] with indices
// scattered over a large block (Table 6: "indirect array reference"), where
// region prefetching is nearly pure waste and indirect prefetching wins.
func specBzip2() *Spec {
	return &Spec{
		Name:      "bzip2",
		CBench:    true,
		MissCause: "indirect array reference",
		Build: func(f Factor) *Built {
			n := pick[int64](f, 1<<12, 1<<14, 1<<17)
			blockN := pick[int64](f, 1<<12, 1<<14, 1<<17)
			ptrArr := &lang.Array{Name: "ptrarr", Elem: lang.I32, Dims: []int64{n}}
			block := &lang.Array{Name: "block", Elem: lang.I64, Dims: []int64{blockN}, Heap: true}
			work := &lang.Array{Name: "work", Elem: lang.I64, Dims: []int64{n}}
			p := &lang.Program{
				Name:    "bzip2",
				Arrays:  []*lang.Array{ptrArr, block, work},
				Scalars: []string{"r", "i", "g", "j", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						// Scattered indirect pass over the block.
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(n), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
								lang.Ix(block, lang.Ix(ptrArr, lang.S("i"))))},
						}},
						// Short sorting runs: 12-element bursts at strided
						// bases (these drive bzip2's size-2 regions in the
						// paper's Table 4).
						&lang.For{Var: "g", Lo: lang.C(0), Hi: lang.C(n / 64), Step: 1, Body: []lang.Stmt{
							&lang.For{Var: "j", Lo: lang.B(lang.Mul, lang.S("g"), lang.C(64)),
								Hi:   lang.B(lang.Add, lang.B(lang.Mul, lang.S("g"), lang.C(64)), lang.C(12)),
								Step: 1, Body: []lang.Stmt{
									&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
										lang.Ix(work, lang.S("j")))},
								}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(22)
					perm := r.perm(int(n))
					base := lay.Addr["ptrarr"]
					for i := int64(0); i < n; i++ {
						m.Write32(base+uint64(i*4), uint32(int64(perm[i])%blockN))
					}
					fillWords(m, lay.Addr["block"], blockN, r)
					fillWords(m, lay.Addr["work"], n, r)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specMesa proxies 177.mesa: short vertex bursts (16 elements) through
// per-object chunk pointers scattered in a large pool. The compiler's
// variable-size regions cover exactly one burst (region size 2 blocks,
// 90% of mesa's regions in the paper's Table 4), while fixed 4 KB regions
// prefetch mostly untouched pool.
func specMesa() *Spec {
	return &Spec{
		Name:      "mesa",
		CBench:    true,
		MissCause: "short scattered vertex bursts",
		Build: func(f Factor) *Built {
			objs := pick[int64](f, 1<<9, 1<<11, 1<<13)
			burst := int64(16)
			vbase := &lang.Array{Name: "vbase", Elem: lang.PtrT{Elem: lang.I64}, Dims: []int64{objs}, Heap: true}
			p := &lang.Program{
				Name:    "mesa",
				Arrays:  []*lang.Array{vbase},
				Scalars: []string{"r", "i", "j", "vp", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(objs), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("vp"), Src: lang.Ix(vbase, lang.S("i"))},
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(burst), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									&lang.PtrIndex{Ptr: lang.S("vp"), Elem: lang.I64, Idx: lang.S("j")})},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(23)
					// A large vertex pool; each object's chunk sits at a
					// random 4 KB-spread position, so consecutive objects
					// are far apart.
					pool := m.Alloc(uint64(objs)*4096, 4096)
					order := r.perm(int(objs))
					for i := int64(0); i < objs; i++ {
						chunk := pool + uint64(order[i])*4096
						m.Write64(lay.Addr["vbase"]+uint64(i*8), chunk)
						for j := int64(0); j < burst; j++ {
							m.Write64(chunk+uint64(j*8), r.next()>>40)
						}
					}
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specSphinx proxies the Sphinx speech recognizer: each query probes a
// handful of adjacent hash slots (short spatial bursts at scattered bases,
// Table 6: "hash table lookup") and then walks a short overflow chain.
func specSphinx() *Spec {
	return &Spec{
		Name:      "sphinx",
		CBench:    true,
		MissCause: "hash table lookup",
		Build: func(f Factor) *Built {
			slots := pick[int64](f, 1<<13, 1<<16, 1<<19)
			queries := pick[int64](f, 1<<10, 1<<12, 1<<15)
			probe := int64(4)
			chainLen := pick(f, 3, 4, 4)
			entry := lang.NewStruct("entry",
				lang.Field{Name: "score", Type: lang.I64},
			)
			entry.Fields = append(entry.Fields, lang.Field{Name: "next", Type: lang.PtrT{Elem: entry}, Offset: 8})
			setStructSize(entry, 16)

			table := &lang.Array{Name: "table", Elem: lang.I64, Dims: []int64{slots}, Heap: true}
			hv := &lang.Array{Name: "hv", Elem: lang.I32, Dims: []int64{queries}}
			chains := &lang.Array{Name: "chains", Elem: lang.PtrT{Elem: entry}, Dims: []int64{queries}, Heap: true}
			p := &lang.Program{
				Name:    "sphinx",
				Arrays:  []*lang.Array{table, hv, chains},
				Scalars: []string{"r", "q", "h", "j", "e", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "q", Lo: lang.C(0), Hi: lang.C(queries), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("h"), Src: lang.Ix(hv, lang.S("q"))},
							// Probe a few adjacent slots.
							&lang.For{Var: "j", Lo: lang.S("h"),
								Hi: lang.B(lang.Add, lang.S("h"), lang.C(probe)), Step: 1,
								Body: []lang.Stmt{
									&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
										lang.Ix(table, lang.S("j")))},
								}},
							// Walk the overflow chain.
							&lang.Assign{Dst: lang.S("e"), Src: lang.Ix(chains, lang.S("q"))},
							&lang.While{Cond: lang.B(lang.Ne, lang.S("e"), lang.C(0)), Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									&lang.FieldRef{Ptr: lang.S("e"), Struct: entry, Field: "score"})},
								&lang.Assign{Dst: lang.S("e"),
									Src: &lang.FieldRef{Ptr: lang.S("e"), Struct: entry, Field: "next"}},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(24)
					fillWords(m, lay.Addr["table"], slots, r)
					for q := int64(0); q < queries; q++ {
						m.Write32(lay.Addr["hv"]+uint64(q*4), uint32(int64(r.intn(int(slots-probe)))))
					}
					all := allocNodes(m, entry, int(queries)*chainLen, true, 48, r)
					for i, a := range all {
						m.Write64(a, uint64(i))
					}
					for q := int64(0); q < queries; q++ {
						chunk := all[q*int64(chainLen) : (q+1)*int64(chainLen)]
						linkList(m, chunk, 8)
						m.Write64(lay.Addr["chains"]+uint64(q*8), chunk[0])
					}
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specCrafty proxies 186.crafty: hot bitboard tables that fit comfortably
// in the L2, so its miss rate is negligible; like the paper we exclude it
// from the timing results (Section 5.1) but keep it for hint statistics.
func specCrafty() *Spec {
	return &Spec{
		Name:      "crafty",
		CBench:    true,
		Exclude:   true,
		MissCause: "negligible L2 misses",
		Build: func(f Factor) *Built {
			n := int64(1 << 12) // 32 KB: far below the L2 capacity
			tbl := &lang.Array{Name: "tbl", Elem: lang.I64, Dims: []int64{n}}
			p := &lang.Program{
				Name:    "crafty",
				Arrays:  []*lang.Array{tbl},
				Scalars: []string{"r", "i", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(512), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(n), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Xor, lang.S("acc"),
								lang.B(lang.Add, lang.Ix(tbl, lang.S("i")), lang.S("i")))},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					fillWords(m, lay.Addr["tbl"], n, newRNG(25))
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}
