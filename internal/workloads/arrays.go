package workloads

import (
	"grp/internal/compiler"
	"grp/internal/lang"
	"grp/internal/mem"
)

// specGzip proxies 164.gzip: sliding-window copies over large byte
// buffers, dominated by unit-stride spatial misses.
func specGzip() *Spec {
	return &Spec{
		Name:      "gzip",
		CBench:    true,
		MissCause: "sequential window copies",
		Build: func(f Factor) *Built {
			n := pick[int64](f, 1<<13, 1<<16, 1<<18) // 64-bit words
			dist := int64(4096)
			in := &lang.Array{Name: "in", Elem: lang.I64, Dims: []int64{n + dist}}
			out := &lang.Array{Name: "out", Elem: lang.I64, Dims: []int64{n}}
			p := &lang.Program{
				Name:    "gzip",
				Arrays:  []*lang.Array{in, out},
				Scalars: []string{"r", "i", "t"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(4), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(n), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("t"), Src: lang.B(lang.Add,
								lang.Ix(in, lang.S("i")),
								lang.Ix(in, lang.B(lang.Add, lang.S("i"), lang.C(dist))))},
							&lang.Assign{Dst: lang.Ix(out, lang.S("i")), Src: lang.S("t")},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(1)
					base := lay.Addr["in"]
					for i := int64(0); i < n+dist; i++ {
						m.Write64(base+uint64(i*8), r.next()>>32)
					}
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specWupwise proxies 168.wupwise: dense matrix-vector products with
// unit-stride rows, purely spatial.
func specWupwise() *Spec {
	return &Spec{
		Name:      "wupwise",
		FP:        true,
		MissCause: "dense row streaming",
		Build: func(f Factor) *Built {
			rows := pick[int64](f, 64, 256, 1024)
			cols := pick[int64](f, 512, 1024, 1024)
			a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{rows, cols}}
			x := &lang.Array{Name: "x", Elem: lang.I64, Dims: []int64{cols}}
			y := &lang.Array{Name: "y", Elem: lang.I64, Dims: []int64{rows}}
			p := &lang.Program{
				Name:    "wupwise",
				Arrays:  []*lang.Array{a, x, y},
				Scalars: []string{"r", "i", "j", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(rows), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.C(0)},
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(cols), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									lang.B(lang.Mul,
										lang.Ix(a, lang.S("i"), lang.S("j")),
										lang.Ix(x, lang.S("j"))))},
							}},
							&lang.Assign{Dst: lang.Ix(y, lang.S("i")), Src: lang.S("acc")},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(2)
					fillWords(m, lay.Addr["a"], rows*cols, r)
					fillWords(m, lay.Addr["x"], cols, r)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specSwim proxies 171.swim: a 2-D relaxation whose dominant sweep walks
// the arrays in transposed order, so the innermost stride is a full row
// and the spatial reuse is carried by the outer loop (paper Table 6:
// "transpose array access", 92% of misses).
func specSwim() *Spec {
	return &Spec{
		Name:      "swim",
		FP:        true,
		MissCause: "transpose array access",
		Build: func(f Factor) *Built {
			n := pick[int64](f, 96, 320, 768)
			u := &lang.Array{Name: "u", Elem: lang.I64, Dims: []int64{n, n}}
			v := &lang.Array{Name: "v", Elem: lang.I64, Dims: []int64{n, n}}
			p := &lang.Program{
				Name:    "swim",
				Arrays:  []*lang.Array{u, v},
				Scalars: []string{"r", "i", "j", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						// Transposed sweep: u[j][i] with j innermost.
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(n), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.C(0)},
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(n), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									lang.Ix(u, lang.S("j"), lang.S("i")))},
							}},
							&lang.Assign{Dst: lang.Ix(v, lang.C(0), lang.S("i")), Src: lang.S("acc")},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					fillWords(m, lay.Addr["u"], n*n, newRNG(3))
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specMgrid proxies 172.mgrid: 3-D stencil relaxation, unit-stride in the
// innermost dimension with large neighboring-plane strides.
func specMgrid() *Spec {
	return &Spec{
		Name:      "mgrid",
		FP:        true,
		MissCause: "3-D stencil planes",
		Build: func(f Factor) *Built {
			d := pick[int64](f, 24, 40, 64)
			u := &lang.Array{Name: "u", Elem: lang.I64, Dims: []int64{d, d, d}}
			r3 := &lang.Array{Name: "r3", Elem: lang.I64, Dims: []int64{d, d, d}}
			idx := func(k, j, i lang.Expr) *lang.Index { return lang.Ix(u, k, j, i) }
			kv, jv, iv := lang.S("k"), lang.S("j"), lang.S("i")
			p := &lang.Program{
				Name:    "mgrid",
				Arrays:  []*lang.Array{u, r3},
				Scalars: []string{"rep", "k", "j", "i", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "rep", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "k", Lo: lang.C(1), Hi: lang.C(d - 1), Step: 1, Body: []lang.Stmt{
							&lang.For{Var: "j", Lo: lang.C(1), Hi: lang.C(d - 1), Step: 1, Body: []lang.Stmt{
								&lang.For{Var: "i", Lo: lang.C(1), Hi: lang.C(d - 1), Step: 1, Body: []lang.Stmt{
									&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add,
										lang.B(lang.Add,
											lang.B(lang.Add, idx(kv, jv, lang.B(lang.Sub, iv, lang.C(1))),
												idx(kv, jv, lang.B(lang.Add, iv, lang.C(1)))),
											lang.B(lang.Add, idx(kv, lang.B(lang.Sub, jv, lang.C(1)), iv),
												idx(kv, lang.B(lang.Add, jv, lang.C(1)), iv))),
										lang.B(lang.Add, idx(lang.B(lang.Sub, kv, lang.C(1)), jv, iv),
											idx(lang.B(lang.Add, kv, lang.C(1)), jv, iv)))},
									&lang.Assign{Dst: lang.Ix(r3, kv, jv, iv), Src: lang.S("acc")},
								}},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					fillWords(m, lay.Addr["u"], d*d*d, newRNG(4))
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specApplu proxies 173.applu: forward wavefront sweeps over several rank-3
// arrays with both unit-stride and plane-stride operands.
func specApplu() *Spec {
	return &Spec{
		Name:      "applu",
		FP:        true,
		MissCause: "wavefront sweeps",
		Build: func(f Factor) *Built {
			d := pick[int64](f, 24, 40, 64)
			vv := &lang.Array{Name: "v", Elem: lang.I64, Dims: []int64{d, d, d}}
			w := &lang.Array{Name: "w", Elem: lang.I64, Dims: []int64{d, d, d}}
			kv, jv, iv := lang.S("k"), lang.S("j"), lang.S("i")
			p := &lang.Program{
				Name:    "applu",
				Arrays:  []*lang.Array{vv, w},
				Scalars: []string{"rep", "k", "j", "i", "t"},
				Body: []lang.Stmt{
					&lang.For{Var: "rep", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						&lang.For{Var: "k", Lo: lang.C(1), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
								&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
									&lang.Assign{Dst: lang.S("t"), Src: lang.B(lang.Sub,
										lang.Ix(vv, kv, jv, iv),
										lang.B(lang.Mul,
											lang.Ix(w, kv, jv, iv),
											lang.Ix(vv, lang.B(lang.Sub, kv, lang.C(1)), jv, iv)))},
									&lang.Assign{Dst: lang.Ix(vv, kv, jv, iv), Src: lang.S("t")},
								}},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(5)
					fillWords(m, lay.Addr["v"], d*d*d, r)
					fillWords(m, lay.Addr["w"], d*d*d, r)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specArt proxies 179.art: repeated full passes over f32 arrays larger
// than the L2, plus a transposed weight sweep; it is bandwidth-bound, the
// one benchmark the paper says "simply requires more memory bandwidth".
func specArt() *Spec {
	return &Spec{
		Name:      "art",
		FP:        true,
		CBench:    true,
		MissCause: "bandwidth / transpose heap array access",
		Build: func(f Factor) *Built {
			f1 := pick[int64](f, 128, 400, 1024) // neurons
			f2 := pick[int64](f, 256, 640, 2048) // features
			w := &lang.Array{Name: "w", Elem: lang.I32, Dims: []int64{f1, f2}, Heap: true}
			feat := &lang.Array{Name: "feat", Elem: lang.I32, Dims: []int64{f2}, Heap: true}
			out := &lang.Array{Name: "outv", Elem: lang.I32, Dims: []int64{f1}, Heap: true}
			iv, jv := lang.S("i"), lang.S("j")
			p := &lang.Program{
				Name:    "art",
				Arrays:  []*lang.Array{w, feat, out},
				Scalars: []string{"e", "i", "j", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "e", Lo: lang.C(0), Hi: lang.C(6), Step: 1, Body: []lang.Stmt{
						// Forward pass: row-major streaming.
						&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(f1), Step: 1, Body: []lang.Stmt{
							&lang.Assign{Dst: lang.S("acc"), Src: lang.C(0)},
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(f2), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
									lang.B(lang.Mul, lang.Ix(w, iv, jv), lang.Ix(feat, jv)))},
							}},
							&lang.Assign{Dst: lang.Ix(out, iv), Src: lang.S("acc")},
						}},
						// Weight update: transposed (column-major) sweep.
						&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(f2), Step: 1, Body: []lang.Stmt{
							&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(f1), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.Ix(w, iv, jv), Src: lang.B(lang.Add,
									lang.Ix(w, iv, jv), lang.Ix(out, iv))},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(6)
					fillWords32(m, lay.Addr["w"], f1*f2, r)
					fillWords32(m, lay.Addr["feat"], f2, r)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

// specApsi proxies 301.apsi: rank-3 Fortran-style sweeps where one phase
// runs along the spatial dimension and another crosses it with a plane
// stride whose reuse still fits in the L2.
func specApsi() *Spec {
	return &Spec{
		Name:      "apsi",
		FP:        true,
		MissCause: "mixed-stride rank-3 sweeps",
		Build: func(f Factor) *Built {
			d := pick[int64](f, 24, 40, 56)
			t := &lang.Array{Name: "t", Elem: lang.I64, Dims: []int64{d, d, d}}
			q := &lang.Array{Name: "q", Elem: lang.I64, Dims: []int64{d, d, d}}
			kv, jv, iv := lang.S("k"), lang.S("j"), lang.S("i")
			p := &lang.Program{
				Name:    "apsi",
				Arrays:  []*lang.Array{t, q},
				Scalars: []string{"rep", "k", "j", "i", "acc"},
				Body: []lang.Stmt{
					&lang.For{Var: "rep", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						// Phase 1: unit stride.
						&lang.For{Var: "k", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
							&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
								&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
									&lang.Assign{Dst: lang.Ix(t, kv, jv, iv), Src: lang.B(lang.Add,
										lang.Ix(t, kv, jv, iv), lang.Ix(q, kv, jv, iv))},
								}},
							}},
						}},
						// Phase 2: middle-dimension crossing (stride d
						// elements), spatial reuse carried by loop i.
						&lang.For{Var: "k", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
							&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
								&lang.Assign{Dst: lang.S("acc"), Src: lang.C(0)},
								&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(d), Step: 1, Body: []lang.Stmt{
									&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
										lang.Ix(q, kv, jv, iv))},
								}},
								&lang.Assign{Dst: lang.Ix(t, kv, lang.C(0), iv), Src: lang.S("acc")},
							}},
						}},
					}},
				},
			}
			return &Built{
				Prog: p,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					r := newRNG(7)
					fillWords(m, lay.Addr["t"], d*d*d, r)
					fillWords(m, lay.Addr["q"], d*d*d, r)
				},
				MaxInstrs: pick[uint64](f, 150_000, 700_000, 2_500_000),
			}
		},
	}
}

func fillWords(m *mem.Memory, base uint64, n int64, r *rng) {
	for i := int64(0); i < n; i++ {
		m.Write64(base+uint64(i*8), r.next()>>40)
	}
}

func fillWords32(m *mem.Memory, base uint64, n int64, r *rng) {
	for i := int64(0); i < n; i++ {
		m.Write32(base+uint64(i*4), uint32(r.next()>>48))
	}
}
