// Robustness overhead gate: what the crash-safety machinery of PR 7 —
// per-cell deadline contexts (with the cancellation hook polled in the
// CPU commit loop), the retry wrapper, cell key computation, and the
// fsynced sweep journal — costs on the campaign hot path, and proof it
// stays cheap. Durability must be invisible when nothing goes wrong.
//
//	go test -run TestRobustOverhead          (emits BENCH_robust.json)
//	go test -run TestBenchRobustFormat
//
// BENCH_robust.json format (one object, see DESIGN.md §12):
//
//	{
//	  "factor": "test",             // workload scale the cells ran at
//	  "scheme": "all",              // each kernel sweeps every scheme
//	  "rounds": 9,                  // paired timing rounds (median ratio taken)
//	  "num_cpu": 1,
//	  "kernels": [                  // one entry per kernel, kernel order
//	    {"bench": "mcf",
//	     "plain_ns_per_cell": 1,    // median round, bare cached engine
//	     "hardened_ns_per_cell": 1, // median round, journal+deadline+retry
//	     "overhead": 1.0},          // hardened / plain of that round
//	    ...],
//	  "geomean_overhead": 1.0       // geometric mean of kernel overheads
//	}
package grp

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"grp/internal/campaign"
	"grp/internal/core"
	"grp/internal/workloads"
)

// benchRobustKernel is one kernel's row in BENCH_robust.json.
type benchRobustKernel struct {
	Bench             string  `json:"bench"`
	PlainNSPerCell    int64   `json:"plain_ns_per_cell"`
	HardenedNSPerCell int64   `json:"hardened_ns_per_cell"`
	Overhead          float64 `json:"overhead"`
}

// benchRobustReport is the artifact CI archives as BENCH_robust.json.
type benchRobustReport struct {
	Factor          string              `json:"factor"`
	Scheme          string              `json:"scheme"`
	Rounds          int                 `json:"rounds"`
	NumCPU          int                 `json:"num_cpu"`
	Kernels         []benchRobustKernel `json:"kernels"`
	GeomeanOverhead float64             `json:"geomean_overhead"`
}

// parseBenchRobust decodes and sanity-checks a BENCH_robust.json
// document; CI consumers and the format test share this definition.
func parseBenchRobust(data []byte) (*benchRobustReport, error) {
	var r benchRobustReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Factor == "" || r.Scheme == "" {
		return nil, fmt.Errorf("bench_robust: missing factor/scheme")
	}
	if r.Rounds <= 0 || len(r.Kernels) == 0 {
		return nil, fmt.Errorf("bench_robust: %d rounds, %d kernels", r.Rounds, len(r.Kernels))
	}
	if r.GeomeanOverhead <= 0 {
		return nil, fmt.Errorf("bench_robust: geomean_overhead %v not positive", r.GeomeanOverhead)
	}
	for _, k := range r.Kernels {
		if k.Bench == "" || k.PlainNSPerCell <= 0 || k.HardenedNSPerCell <= 0 {
			return nil, fmt.Errorf("bench_robust: kernel %q has non-positive timings", k.Bench)
		}
		if got := float64(k.HardenedNSPerCell) / float64(k.PlainNSPerCell); math.Abs(got-k.Overhead) > 0.01*k.Overhead {
			return nil, fmt.Errorf("bench_robust: kernel %q overhead %v inconsistent with timings (%v)", k.Bench, k.Overhead, got)
		}
	}
	return &r, nil
}

// TestRobustOverhead times every kernel's grp/var cell through the
// campaign engine twice per round — once bare (cache only, as the engine
// ran before the hardening) and once fully hardened (cold journal with
// fsynced completion records, a per-cell deadline whose cancellation
// hook is live in the CPU commit loop, and the retry wrapper) — paired
// rounds, median ratio, and gates the tentpole's headline claim: crash
// safety costs at most 3% geomean when nothing crashes.
func TestRobustOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const rounds = 9
	rep := benchRobustReport{
		Factor: workloads.Test.String(),
		Scheme: "all",
		Rounds: rounds,
		NumCPU: runtime.NumCPU(),
	}

	// timeSweep runs one kernel's sweep over every scheme on a cold
	// cache — the grid shape a real campaign has, so per-campaign fixed
	// costs (journal open, group-commit syncs) amortize the way they do
	// in production. Both sides pay the cache Puts; only the hardened
	// side pays key+journal+deadline bookkeeping. Serial engine (Jobs:1),
	// so the measurement is the cell path itself, not scheduling.
	schemes := core.AllSchemes()
	timeSweep := func(bench string, hardened bool) time.Duration {
		dir := t.TempDir()
		cfg := campaign.Config{Jobs: 1, Cache: true, CacheDir: dir}
		if hardened {
			cfg.CellTimeout = time.Hour
			cfg.Retry = campaign.RetryPolicy{MaxAttempts: 3}
		}
		eng := campaign.New(cfg)
		jobs := make([]campaign.Job, len(schemes))
		for i, sc := range schemes {
			jobs[i] = campaign.Job{Bench: bench, Scheme: sc,
				Opt: core.Options{Factor: workloads.Test}}
		}
		if hardened {
			keys, err := eng.Keys(jobs)
			if err != nil {
				t.Fatal(err)
			}
			j, err := campaign.OpenJournal(dir, "bench", keys, false)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			eng.AttachJournal(j)
		}
		runtime.GC()
		start := time.Now()
		if _, err := eng.Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	logSum := 0.0
	for _, name := range workloads.Names() {
		// Paired rounds with alternating order; the median-ratio round is
		// the kernel's verdict (see obs_bench_test.go for the rationale).
		plains := make([]time.Duration, rounds)
		hards := make([]time.Duration, rounds)
		for r := 0; r < rounds; r++ {
			order := []bool{false, true}
			if r%2 == 1 {
				order = []bool{true, false}
			}
			for _, hardened := range order {
				d := timeSweep(name, hardened)
				if hardened {
					hards[r] = d
				} else {
					plains[r] = d
				}
			}
		}
		byRatio := make([]int, rounds)
		for i := range byRatio {
			byRatio[i] = i
		}
		sort.Slice(byRatio, func(a, b int) bool {
			return float64(hards[byRatio[a]])*float64(plains[byRatio[b]]) <
				float64(hards[byRatio[b]])*float64(plains[byRatio[a]])
		})
		m := byRatio[rounds/2]
		ov := float64(hards[m]) / float64(plains[m])
		logSum += math.Log(ov)
		nCells := int64(len(schemes))
		rep.Kernels = append(rep.Kernels, benchRobustKernel{
			Bench:             name,
			PlainNSPerCell:    plains[m].Nanoseconds() / nCells,
			HardenedNSPerCell: hards[m].Nanoseconds() / nCells,
			Overhead:          ov,
		})
	}
	rep.GeomeanOverhead = math.Exp(logSum / float64(len(rep.Kernels)))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseBenchRobust(data); err != nil {
		t.Fatalf("emitted report fails its own parser: %v", err)
	}
	if err := os.WriteFile("BENCH_robust.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("robustness overhead: geomean %.3fx over %d kernels", rep.GeomeanOverhead, len(rep.Kernels))

	if rep.GeomeanOverhead > 1.03 {
		t.Errorf("hardened-engine geomean overhead is %.3fx, want <= 1.03x", rep.GeomeanOverhead)
	}
}

// TestBenchRobustFormat pins the BENCH_robust.json schema with a canned
// document, and validates the committed artifact when one is present.
func TestBenchRobustFormat(t *testing.T) {
	sample := []byte(`{
	  "factor": "test", "scheme": "grp/var", "rounds": 3, "num_cpu": 1,
	  "kernels": [
	    {"bench": "mcf", "plain_ns_per_cell": 5000000, "hardened_ns_per_cell": 5100000,
	     "overhead": 1.02}
	  ],
	  "geomean_overhead": 1.02
	}`)
	rep, err := parseBenchRobust(sample)
	if err != nil {
		t.Fatalf("canned document rejected: %v", err)
	}
	if rep.Kernels[0].Bench != "mcf" || rep.GeomeanOverhead != 1.02 {
		t.Fatalf("canned document misparsed: %+v", rep)
	}
	for _, bad := range []string{
		`{}`,
		`{"factor":"test","scheme":"grp/var","rounds":0,"kernels":[],"geomean_overhead":1}`,
		`{"factor":"test","scheme":"grp/var","rounds":1,"geomean_overhead":1,
		  "kernels":[{"bench":"mcf","plain_ns_per_cell":100,"hardened_ns_per_cell":100,"overhead":3}]}`,
	} {
		if _, err := parseBenchRobust([]byte(bad)); err == nil {
			t.Errorf("parser accepted invalid document %s", bad)
		}
	}
	data, err := os.ReadFile("BENCH_robust.json")
	if err != nil {
		t.Skip("no committed BENCH_robust.json to validate")
	}
	if _, err := parseBenchRobust(data); err != nil {
		t.Errorf("committed BENCH_robust.json invalid: %v", err)
	}
}
