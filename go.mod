module grp

go 1.22
