// Command grphints shows the GRP compiler's analysis of a benchmark: the
// hint assigned to each memory reference and the generated assembly with
// hint annotations. With -all it compiles every benchmark on a parallel
// worker pool and prints the static hint census as one table.
//
// Usage:
//
//	grphints -bench mcf [-policy default] [-asm]
//	grphints -all [-policy default] [-jobs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/stats"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grphints: ")
	var (
		bench  = flag.String("bench", "mcf", "benchmark name")
		policy = flag.String("policy", "default", "compiler spatial policy")
		asm    = flag.Bool("asm", false, "also print the generated assembly")
		all    = flag.Bool("all", false, "print the static hint census for every benchmark")
		jobs   = flag.Int("jobs", 0, "compile worker goroutines with -all (default GOMAXPROCS)")
	)
	flag.Parse()

	var pol compiler.Policy
	switch *policy {
	case "default":
		pol = compiler.PolicyDefault
	case "conservative":
		pol = compiler.PolicyConservative
	case "aggressive":
		pol = compiler.PolicyAggressive
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	if *all {
		census(pol, *jobs)
		return
	}

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	built := spec.Build(workloads.Test)
	m := mem.New()
	prog, _, an, err := compiler.CompileWorkload(built.Prog, m, pol)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (policy %s)\n\n", spec.Name, pol)
	fmt.Printf("reference hints:\n%s\n", an.Describe())

	h := prog.CountHints()
	fmt.Printf("static census: %d mem instructions, %d spatial, %d pointer, %d recursive, %d indirect, %d variable-size (%.1f%% hinted)\n",
		h.MemInsts, h.Spatial, h.Pointer, h.Recursive, h.Indirect, h.Variable, h.HintRatio())

	if *asm {
		fmt.Printf("\nassembly (%d instructions):\n%s", len(prog.Instrs), isa.Disassemble(prog))
	}
}

// census compiles every benchmark (in parallel) and prints the static
// hint population of each, one row per benchmark in presentation order.
func census(pol compiler.Policy, jobs int) {
	names := workloads.Names()
	counts := make([]isa.HintCounts, len(names))
	err := campaign.ParallelFor(context.Background(), len(names), jobsOrMax(jobs), func(i int) error {
		spec, err := workloads.ByName(names[i])
		if err != nil {
			return err
		}
		built := spec.Build(workloads.Test)
		prog, _, _, err := compiler.CompileWorkload(built.Prog, mem.New(), pol)
		if err != nil {
			return err
		}
		counts[i] = prog.CountHints()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("static hint census (policy %s)", pol),
		Headers: []string{"benchmark", "mem insts", "spatial", "pointer", "recursive", "indirect", "variable", "ratio(%)"},
	}
	for i, h := range counts {
		t.Add(names[i], fmt.Sprint(h.MemInsts), fmt.Sprint(h.Spatial), fmt.Sprint(h.Pointer),
			fmt.Sprint(h.Recursive), fmt.Sprint(h.Indirect), fmt.Sprint(h.Variable), stats.Fmt(h.HintRatio(), 1))
	}
	fmt.Fprint(os.Stdout, t)
}

func jobsOrMax(jobs int) int {
	if jobs > 0 {
		return jobs
	}
	return runtime.GOMAXPROCS(0)
}
