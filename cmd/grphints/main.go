// Command grphints shows the GRP compiler's analysis of a benchmark: the
// hint assigned to each memory reference and the generated assembly with
// hint annotations.
//
// Usage:
//
//	grphints -bench mcf [-policy default] [-asm]
package main

import (
	"flag"
	"fmt"
	"log"

	"grp/internal/compiler"
	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grphints: ")
	var (
		bench  = flag.String("bench", "mcf", "benchmark name")
		policy = flag.String("policy", "default", "compiler spatial policy")
		asm    = flag.Bool("asm", false, "also print the generated assembly")
	)
	flag.Parse()

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	var pol compiler.Policy
	switch *policy {
	case "default":
		pol = compiler.PolicyDefault
	case "conservative":
		pol = compiler.PolicyConservative
	case "aggressive":
		pol = compiler.PolicyAggressive
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	built := spec.Build(workloads.Test)
	m := mem.New()
	prog, _, an, err := compiler.CompileWorkload(built.Prog, m, pol)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (policy %s)\n\n", spec.Name, pol)
	fmt.Printf("reference hints:\n%s\n", an.Describe())

	h := prog.CountHints()
	fmt.Printf("static census: %d mem instructions, %d spatial, %d pointer, %d recursive, %d indirect, %d variable-size (%.1f%% hinted)\n",
		h.MemInsts, h.Spatial, h.Pointer, h.Recursive, h.Indirect, h.Variable, h.HintRatio())

	if *asm {
		fmt.Printf("\nassembly (%d instructions):\n%s", len(prog.Instrs), isa.Disassemble(prog))
	}
}
