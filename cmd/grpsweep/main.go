// Command grpsweep runs a campaign: a (workload × scheme × config-overlay)
// sweep grid executed on a parallel worker pool with a content-addressed
// result cache, producing a deterministic per-cell artifact.
//
// Usage:
//
//	grpsweep -spec 'schemes=base,srp,grp/var × kernels=all × l2.size=512K,1M,2M' \
//	    [-factor small] [-policy default] [-jobs N] [-no-cache] \
//	    [-cache-dir .grpcache] [-format ascii|json|csv] [-out file] \
//	    [-resume] [-keep-going] [-cell-timeout 10m] [-retries 3]
//
// Cells complete in any order but reduce in canonical grid order, so the
// artifact is byte-identical across -jobs settings and across warm/cold
// cache runs; re-running an unchanged campaign is all cache hits and
// simulates nothing. Progress and cache statistics go to stderr, the
// artifact to stdout or -out. Progress lines carry live fleet telemetry
// (cells/s, worker utilization, cache hit count, retries, ETA); -listen
// additionally serves the same numbers as Prometheus text on /metrics
// alongside net/http/pprof for profiling a running campaign.
//
// The campaign is crash-safe: a sweep journal under the cache directory
// records completions durably, SIGINT/SIGTERM drains in-flight cells and
// exits cleanly, and -resume picks an interrupted (or killed) sweep back
// up — completed cells replay from the cache, only the remainder
// simulates, and the final artifact is byte-identical to an uninterrupted
// run. A lock file guards against two campaigns running the same sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/obs"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpsweep: ")
	var (
		spec      = flag.String("spec", "", "sweep spec, e.g. 'schemes=base,grp/var × kernels=mcf,art × l2.size=512K,1M' (required)")
		factor    = flag.String("factor", "small", "workload scale: test, small, full")
		policy    = flag.String("policy", "default", "compiler spatial policy: default, conservative, aggressive")
		jobs      = flag.Int("jobs", 0, "worker goroutines (default GOMAXPROCS)")
		cacheOn   = flag.Bool("cache", true, "consult and populate the content-addressed result cache")
		noCache   = flag.Bool("no-cache", false, "disable the result cache (overrides -cache)")
		cacheDir  = flag.String("cache-dir", campaign.DefaultCacheDir, "result cache directory")
		format    = flag.String("format", "ascii", "artifact format: ascii, json, csv")
		out       = flag.String("out", "", "write the artifact to this file (default stdout)")
		quiet     = flag.Bool("q", false, "suppress per-cell progress lines")
		listen    = flag.String("listen", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address during the run, e.g. localhost:6060")
		resume    = flag.Bool("resume", false, "resume an interrupted sweep from its journal (requires the cache)")
		keepGoing = flag.Bool("keep-going", false, "record per-cell failures in the artifact instead of aborting the sweep")
		cellTO    = flag.Duration("cell-timeout", 0, "per-cell attempt deadline, e.g. 10m (0 = none; overruns retry)")
		retries   = flag.Int("retries", 0, "attempts per cell for transient failures (default 3, 1 disables retry)")
		chaosSpec = flag.String("chaos", "", "dev-only fault injection, e.g. 'panic=2,torn=3,kill=5' (see internal/campaign chaos.go)")
		dryRun    = flag.Bool("dry-run", false, "print the expansion summary (cells, axes, estimated cache hit rate) without simulating")
		remote    = flag.String("remote", "", "submit the sweep to a grpserve instance at this base URL (e.g. http://host:8080) instead of simulating locally")
		tenant    = flag.String("tenant", "", "tenant name for -remote fairness accounting")
		weight    = flag.Int("weight", 0, "scheduling weight 1..16 for -remote (default 1)")
	)
	flag.Parse()
	if *spec == "" {
		log.Fatal("-spec is required (see -h for the grammar)")
	}
	if *format != "ascii" && *format != "json" && *format != "csv" {
		log.Fatalf("unknown format %q (want ascii, json, or csv)", *format)
	}
	useCache := *cacheOn && !*noCache
	if *resume && !useCache {
		log.Fatal("-resume needs the result cache (it is what replays completed cells)")
	}

	// Open the artifact destination before doing anything expensive so a
	// bad path fails fast (remote mode writes the fetched artifact here
	// too).
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}

	if *remote != "" {
		runRemote(remoteRun{
			base:   *remote,
			spec:   *spec,
			factor: *factor,
			policy: *policy,
			tenant: *tenant,
			weight: *weight,
			format: *format,
			dryRun: *dryRun,
			quiet:  *quiet,
			dst:    dst,
		})
		return
	}

	base := core.Options{Factor: parseFactor(*factor), Policy: parsePolicy(*policy)}
	grid, err := campaign.ParseSpec(*spec, base)
	if err != nil {
		log.Fatal(err)
	}

	var chaos *campaign.Chaos
	if *chaosSpec != "" {
		if chaos, err = campaign.ParseChaos(*chaosSpec); err != nil {
			log.Fatal(err)
		}
		log.Printf("CHAOS MODE: injecting %q", *chaosSpec)
	}

	// SIGINT/SIGTERM cancel the run context: workers drain their in-flight
	// cells (each simulation polls the context), completed work is already
	// journaled, and the journal closes cleanly on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := campaign.Config{
		Jobs:        *jobs,
		Cache:       useCache,
		CacheDir:    *cacheDir,
		CellTimeout: *cellTO,
		Retry:       campaign.RetryPolicy{MaxAttempts: *retries},
		KeepGoing:   *keepGoing,
		Chaos:       chaos,
		Warnf:       log.Printf,
	}
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The reporter turns cell start/finish events into live throughput,
	// worker utilization, and ETA; -listen additionally serves the same
	// numbers over HTTP for fleet scraping.
	rep := obs.NewReporter(len(grid.Cells), workers)
	if *listen != "" {
		srv, err := obs.NewServer(*listen, rep, obs.NewBuildInfo(obs.Version, campaign.SchemaVersion()))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}
	cfg.OnCellStart = rep.CellStart
	cfg.OnCellRetry = rep.CellRetry
	cfg.OnCellFail = rep.CellFailed
	prevHits := 0
	cfg.Progress = func(done, total, hits int) {
		rep.CellDone(hits > prevHits) // Progress calls are serialized
		prevHits = hits
		if !*quiet {
			fmt.Fprintf(os.Stderr, "grpsweep: %s\n", rep.Line())
		}
	}
	eng := campaign.New(cfg)
	gridJobs := grid.Jobs()

	if *dryRun {
		d, err := eng.DryRunGrid(grid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(dst, d)
		return
	}

	// The journal makes completions durable and guards the sweep with a
	// lock; it needs the cells' content addresses up front.
	var journal *campaign.Journal
	if useCache {
		keys, err := eng.Keys(gridJobs)
		if err != nil {
			log.Fatal(err)
		}
		journal, err = campaign.OpenJournal(*cacheDir, *spec, keys, *resume)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		eng.AttachJournal(journal)
		if *resume {
			log.Printf("resuming sweep %s: %d of %d cells already completed",
				journal.ID(), journal.CompletedCount(), len(gridJobs))
		}
	}

	log.Printf("campaign: %d cells (%d benches × %d schemes × %d configs), %d jobs, cache %s",
		len(grid.Cells), len(grid.Benches), len(grid.Schemes),
		len(grid.Cells)/(len(grid.Benches)*len(grid.Schemes)), eng.Jobs(), cacheState(cfg))

	start := time.Now()
	report, err := eng.RunReport(ctx, gridJobs)
	if err != nil {
		journal.Close()
		if errors.Is(err, context.Canceled) {
			log.Printf("interrupted: completed cells are journaled; rerun with -resume to finish")
			os.Exit(130)
		}
		log.Fatal(err)
	}
	wall := time.Since(start)

	// The artifact renders through the same path grpserve uses
	// (campaign.WriteArtifact), which is what keeps a remote artifact
	// byte-identical to a local run of the same grid.
	art := &campaign.Artifact{
		Spec:     *spec,
		Factor:   base.Factor.String(),
		Policy:   base.Policy.String(),
		Grid:     grid,
		Results:  report.Results,
		Failures: report.Failures,
	}
	fatal(campaign.WriteArtifact(dst, *format, art))

	cs := eng.CacheStats()
	extra := ""
	if cs.Retries > 0 || cs.Corrupt > 0 {
		extra = fmt.Sprintf(", %d retries, %d corrupt cells quarantined", cs.Retries, cs.Quarantined)
	}
	log.Printf("done in %v: %d cells, %d cache hits, simulated %d%s",
		wall.Round(time.Millisecond), len(grid.Cells), cs.Hits, uint64(len(grid.Cells))-cs.Hits, extra)
	if n := len(report.Failures); n > 0 {
		for _, f := range report.Failures {
			log.Printf("FAILED cell %s/%s (index %d, %d attempts): %s", f.Bench, f.Scheme, f.Index, f.Attempts, f.Err)
		}
		journal.Close()
		log.Printf("%d of %d cells failed; rerun with -resume to retry them", n, len(grid.Cells))
		os.Exit(1)
	}
}

func cacheState(cfg campaign.Config) string {
	if !cfg.Cache {
		return "off"
	}
	return "on (" + cfg.CacheDir + ")"
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func parseFactor(s string) workloads.Factor {
	switch s {
	case "test":
		return workloads.Test
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	}
	log.Fatalf("unknown factor %q (want test, small, full)", s)
	return 0
}

func parsePolicy(s string) compiler.Policy {
	switch s {
	case "default":
		return compiler.PolicyDefault
	case "conservative":
		return compiler.PolicyConservative
	case "aggressive":
		return compiler.PolicyAggressive
	}
	log.Fatalf("unknown policy %q", s)
	return 0
}
