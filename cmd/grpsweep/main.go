// Command grpsweep runs a campaign: a (workload × scheme × config-overlay)
// sweep grid executed on a parallel worker pool with a content-addressed
// result cache, producing a deterministic per-cell artifact.
//
// Usage:
//
//	grpsweep -spec 'schemes=base,srp,grp/var × kernels=all × l2.size=512K,1M,2M' \
//	    [-factor small] [-policy default] [-jobs N] [-no-cache] \
//	    [-cache-dir .grpcache] [-format ascii|json|csv] [-out file]
//
// Cells complete in any order but reduce in canonical grid order, so the
// artifact is byte-identical across -jobs settings and across warm/cold
// cache runs; re-running an unchanged campaign is all cache hits and
// simulates nothing. Progress and cache statistics go to stderr, the
// artifact to stdout or -out. Progress lines carry live fleet telemetry
// (cells/s, worker utilization, cache hit count, ETA); -listen
// additionally serves the same numbers as Prometheus text on /metrics
// alongside net/http/pprof for profiling a running campaign.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/obs"
	"grp/internal/stats"
	"grp/internal/workloads"
)

// cellOut is one row of the JSON artifact.
type cellOut struct {
	Bench      string  `json:"bench"`
	Scheme     string  `json:"scheme"`
	Overlay    string  `json:"overlay"`
	Instrs     uint64  `json:"instrs"`
	Cycles     uint64  `json:"cycles"`
	IPC        float64 `json:"ipc"`
	L2MissPct  float64 `json:"l2_miss_pct"`
	Traffic    uint64  `json:"traffic_bytes"`
	ArchDigest string  `json:"arch_digest"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpsweep: ")
	var (
		spec     = flag.String("spec", "", "sweep spec, e.g. 'schemes=base,grp/var × kernels=mcf,art × l2.size=512K,1M' (required)")
		factor   = flag.String("factor", "small", "workload scale: test, small, full")
		policy   = flag.String("policy", "default", "compiler spatial policy: default, conservative, aggressive")
		jobs     = flag.Int("jobs", 0, "worker goroutines (default GOMAXPROCS)")
		cacheOn  = flag.Bool("cache", true, "consult and populate the content-addressed result cache")
		noCache  = flag.Bool("no-cache", false, "disable the result cache (overrides -cache)")
		cacheDir = flag.String("cache-dir", campaign.DefaultCacheDir, "result cache directory")
		format   = flag.String("format", "ascii", "artifact format: ascii, json, csv")
		out      = flag.String("out", "", "write the artifact to this file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress lines")
		listen   = flag.String("listen", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address during the run, e.g. localhost:6060")
	)
	flag.Parse()
	if *spec == "" {
		log.Fatal("-spec is required (see -h for the grammar)")
	}
	if *format != "ascii" && *format != "json" && *format != "csv" {
		log.Fatalf("unknown format %q (want ascii, json, or csv)", *format)
	}

	base := core.Options{Factor: parseFactor(*factor), Policy: parsePolicy(*policy)}
	grid, err := campaign.ParseSpec(*spec, base)
	if err != nil {
		log.Fatal(err)
	}

	// Open the artifact before simulating so a bad path fails fast.
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}

	cfg := campaign.Config{
		Jobs:     *jobs,
		Cache:    *cacheOn && !*noCache,
		CacheDir: *cacheDir,
	}
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The reporter turns cell start/finish events into live throughput,
	// worker utilization, and ETA; -listen additionally serves the same
	// numbers over HTTP for fleet scraping.
	rep := obs.NewReporter(len(grid.Cells), workers)
	if *listen != "" {
		srv, err := obs.NewServer(*listen, rep)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}
	cfg.OnCellStart = rep.CellStart
	prevHits := 0
	cfg.Progress = func(done, total, hits int) {
		rep.CellDone(hits > prevHits) // Progress calls are serialized
		prevHits = hits
		if !*quiet {
			fmt.Fprintf(os.Stderr, "grpsweep: %s\n", rep.Line())
		}
	}
	eng := campaign.New(cfg)
	log.Printf("campaign: %d cells (%d benches × %d schemes × %d configs), %d jobs, cache %s",
		len(grid.Cells), len(grid.Benches), len(grid.Schemes),
		len(grid.Cells)/(len(grid.Benches)*len(grid.Schemes)), eng.Jobs(), cacheState(cfg))

	start := time.Now()
	results, err := eng.Run(grid.Jobs())
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	cells := make([]cellOut, len(results))
	for i, r := range results {
		cells[i] = cellOut{
			Bench:      grid.Cells[i].Bench,
			Scheme:     grid.Cells[i].Scheme.String(),
			Overlay:    grid.Cells[i].OverlayString(),
			Instrs:     r.CPU.Instrs,
			Cycles:     r.CPU.Cycles,
			IPC:        r.IPC(),
			L2MissPct:  r.L2.MissRate(),
			Traffic:    r.TrafficBytes,
			ArchDigest: fmt.Sprintf("%016x", r.ArchDigest),
		}
	}

	switch *format {
	case "json":
		env := struct {
			Spec   string    `json:"spec"`
			Factor string    `json:"factor"`
			Policy string    `json:"policy"`
			Cells  []cellOut `json:"cells"`
		}{*spec, base.Factor.String(), base.Policy.String(), cells}
		enc := json.NewEncoder(dst)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(env))
	default:
		t := &stats.Table{
			Title:   fmt.Sprintf("campaign: %s", *spec),
			Headers: []string{"benchmark", "scheme", "overlay", "instrs", "cycles", "IPC", "L2miss%", "traffic", "archdigest"},
		}
		for _, c := range cells {
			t.Add(c.Bench, c.Scheme, c.Overlay, fmt.Sprint(c.Instrs), fmt.Sprint(c.Cycles),
				stats.Fmt(c.IPC, 3), stats.Fmt(c.L2MissPct, 1), fmt.Sprint(c.Traffic), c.ArchDigest)
		}
		if *format == "csv" {
			fatal(t.WriteCSV(dst))
		} else {
			_, err := fmt.Fprintln(dst, t)
			fatal(err)
		}
	}

	cs := eng.CacheStats()
	log.Printf("done in %v: %d cells, %d cache hits, simulated %d",
		wall.Round(time.Millisecond), len(cells), cs.Hits, uint64(len(cells))-cs.Hits)
}

func cacheState(cfg campaign.Config) string {
	if !cfg.Cache {
		return "off"
	}
	return "on (" + cfg.CacheDir + ")"
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func parseFactor(s string) workloads.Factor {
	switch s {
	case "test":
		return workloads.Test
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	}
	log.Fatalf("unknown factor %q (want test, small, full)", s)
	return 0
}

func parsePolicy(s string) compiler.Policy {
	switch s {
	case "default":
		return compiler.PolicyDefault
	case "conservative":
		return compiler.PolicyConservative
	case "aggressive":
		return compiler.PolicyAggressive
	}
	log.Fatalf("unknown policy %q", s)
	return 0
}
