package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"grp/internal/campaign"
	"grp/internal/serve"
)

// Remote mode turns grpsweep into a grpserve client: the sweep runs on
// the service's shared worker pool (deduped against every other
// client's in-flight cells) while this process streams per-cell events
// for progress and fetches the finished artifact — which the server
// renders through the same campaign.WriteArtifact path, so the bytes
// written to -out are identical to a local run's.

type remoteRun struct {
	base   string
	spec   string
	factor string
	policy string
	tenant string
	weight int
	format string
	dryRun bool
	quiet  bool
	dst    io.Writer
}

func runRemote(rr remoteRun) {
	base := strings.TrimRight(rr.base, "/")
	client := &http.Client{} // no overall timeout: event streams are long-lived

	req := serve.SweepRequest{
		Spec:   rr.spec,
		Factor: rr.factor,
		Policy: rr.policy,
		Tenant: rr.tenant,
		Weight: rr.weight,
		DryRun: rr.dryRun,
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("submitting to %s: %v", base, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("reading submit response: %v", err)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusTooManyRequests:
		log.Fatalf("server over capacity: %s (Retry-After: %ss)",
			remoteErr(data), resp.Header.Get("Retry-After"))
	default:
		log.Fatalf("submit rejected (%s): %s", resp.Status, remoteErr(data))
	}

	if rr.dryRun {
		var d campaign.DryRun
		if err := json.Unmarshal(data, &d); err != nil {
			log.Fatalf("decoding dry-run response: %v", err)
		}
		fmt.Fprint(rr.dst, d.String())
		return
	}

	var st serve.SweepStatus
	if err := json.Unmarshal(data, &st); err != nil {
		log.Fatalf("decoding submit response: %v", err)
	}
	verb := "admitted"
	if resp.StatusCode == http.StatusOK {
		verb = "joined" // an identical sweep was already in flight
	}
	log.Printf("sweep %s %s on %s: %d cells (%d already done)", st.ID, verb, base, st.Cells, st.Done)

	// Stream completions for progress. The cursor makes the stream
	// resumable: a dropped connection reconnects at the next unseen seq.
	cursor := 0
	for {
		ended, err := streamEvents(client, base, st.ID, &cursor, rr.quiet)
		if ended {
			break
		}
		log.Printf("event stream interrupted (%v); resuming at cursor %d", err, cursor)
		time.Sleep(time.Second)
	}

	resp, err = client.Get(fmt.Sprintf("%s/v1/sweeps/%s/artifact?format=%s", base, st.ID, rr.format))
	if err != nil {
		log.Fatalf("fetching artifact: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		log.Fatalf("artifact fetch failed (%s): %s", resp.Status, remoteErr(data))
	}
	if _, err := io.Copy(rr.dst, resp.Body); err != nil {
		log.Fatalf("writing artifact: %v", err)
	}

	final := fetchStatus(client, base, st.ID)
	log.Printf("done: %d cells, %d failed, %d served from cache or dedup", final.Cells, final.Failed, final.Hits)
	if final.Failed > 0 {
		os.Exit(1)
	}
}

// streamEvents tails the sweep's NDJSON event stream from *cursor,
// printing progress lines. It returns ended=true when the sweep
// finished (the server closes a finished stream) and false on a
// transport error worth retrying.
func streamEvents(client *http.Client, base, id string, cursor *int, quiet bool) (bool, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sweeps/%s/events?cursor=%d", base, id, *cursor))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return false, fmt.Errorf("%s: %s", resp.Status, remoteErr(data))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev serve.CellEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return false, fmt.Errorf("decoding event: %w", err)
		}
		*cursor = ev.Seq + 1
		if !quiet {
			state := "ok"
			if ev.Cell.Error != "" {
				state = "FAILED: " + ev.Cell.Error
			}
			fmt.Fprintf(os.Stderr, "grpsweep: %d/%d %s/%s %s %s\n",
				ev.Done, ev.Total, ev.Cell.Bench, ev.Cell.Scheme, ev.Cell.Overlay, state)
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	// Clean EOF: either the sweep finished or the server restarted
	// mid-stream. Only a finished status ends the wait.
	if st := fetchStatus(client, base, id); st.Finished {
		return true, nil
	}
	return false, fmt.Errorf("stream closed before the sweep finished")
}

// fetchStatus polls one sweep's status, fatally on transport errors.
func fetchStatus(client *http.Client, base, id string) serve.SweepStatus {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sweeps/%s", base, id))
	if err != nil {
		log.Fatalf("fetching sweep status: %v", err)
	}
	defer resp.Body.Close()
	var st serve.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatalf("decoding sweep status: %v", err)
	}
	return st
}

// remoteErr extracts the server's structured error message, falling
// back to the raw body.
func remoteErr(data []byte) string {
	var re struct {
		Field string `json:"field"`
		Msg   string `json:"error"`
	}
	if json.Unmarshal(data, &re) == nil && re.Msg != "" {
		if re.Field != "" {
			return re.Field + ": " + re.Msg
		}
		return re.Msg
	}
	return strings.TrimSpace(string(data))
}
