// Command grptrace records a benchmark's memory-reference trace from an
// execution-driven run, or replays a recorded trace through a chosen
// prefetching scheme trace-driven.
//
//	grptrace record -bench mcf -o mcf.trc [-factor small]
//	grptrace record -bench mcf,art,twolf -o 'traces/%s.trc' [-jobs N]
//	grptrace replay -i mcf.trc -scheme srp [-gap 1]
//
// Recording accepts a comma-separated benchmark list; the traces are then
// recorded on a parallel worker pool and -o must contain %s, replaced by
// each benchmark's name.
//
// Replaying a trace reproduces the prefetcher-visible reference stream at
// a fraction of execution-driven cost; absolute cycle counts are not
// comparable to grpsim's (the core is replaced by a fixed issue rate).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/cpu"
	"grp/internal/mem"
	"grp/internal/prefetch"
	"grp/internal/sim"
	"grp/internal/trace"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grptrace: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: grptrace record|replay [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want record or replay)", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "wupwise", "benchmark to trace, or a comma-separated list")
	out := fs.String("o", "", "output trace file (required; with a bench list it must contain %s)")
	factor := fs.String("factor", "test", "workload scale: test, small, full")
	jobs := fs.Int("jobs", 0, "recording worker goroutines with a bench list (default GOMAXPROCS)")
	_ = fs.Parse(args)
	if *out == "" {
		log.Fatal("record: -o is required")
	}
	benches := strings.Split(*bench, ",")
	f := parseFactor(*factor)
	if len(benches) > 1 {
		if !strings.Contains(*out, "%s") {
			log.Fatalf("record: -o must contain a %q placeholder when tracing multiple benchmarks", "%s")
		}
		specs := make([]*workloads.Spec, len(benches))
		files := make([]*os.File, len(benches))
		for i, b := range benches {
			spec, err := workloads.ByName(b)
			if err != nil {
				log.Fatal(err)
			}
			specs[i] = spec
			// Every output file opens before any recording starts: one
			// unwritable path must not waste the traces already recorded.
			file, err := os.Create(fmt.Sprintf(*out, spec.Name))
			if err != nil {
				log.Fatal(err)
			}
			files[i] = file
		}
		n := *jobs
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		err := campaign.ParallelFor(context.Background(), len(specs), n, func(i int) error {
			return recordOne(specs[i], f, files[i])
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	spec, err := workloads.ByName(benches[0])
	if err != nil {
		log.Fatal(err)
	}
	file, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := recordOne(spec, f, file); err != nil {
		log.Fatal(err)
	}
}

// recordOne traces one benchmark's reference stream into an already-open
// file (paths are validated and opened before any recording work).
func recordOne(spec *workloads.Spec, f workloads.Factor, file *os.File) error {
	defer file.Close()
	built := spec.Build(f)
	m := mem.New()
	prog, lay, _, err := compiler.CompileWorkload(built.Prog, m, compiler.PolicyDefault)
	if err != nil {
		return err
	}
	built.Init(m, lay)

	w, err := trace.NewWriter(file)
	if err != nil {
		return err
	}

	ms, err := sim.NewMemSystem(sim.DefaultMemConfig(), prefetch.NewNull())
	if err != nil {
		return err
	}
	cfg := cpu.Default()
	cfg.MaxInstrs = built.MaxInstrs
	c, err := cpu.New(cfg, m, trace.NewRecorder(ms, w))
	if err != nil {
		return err
	}
	res, err := c.Run(prog)
	if err != nil {
		return err
	}
	ms.Drain()
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d events from %d instructions to %s\n", w.Count(), res.Instrs, file.Name())
	return nil
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	scheme := fs.String("scheme", "srp", "prefetching scheme: base, stride, srp")
	gap := fs.Uint64("gap", 1, "cycles between trace references (>= 1)")
	_ = fs.Parse(args)
	if *in == "" {
		log.Fatal("replay: -i is required")
	}
	if *gap == 0 {
		log.Fatal("replay: -gap must be at least 1 cycle")
	}
	file, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer file.Close()
	r, err := trace.NewReader(file)
	if err != nil {
		log.Fatal(err)
	}

	// Trace-driven replay has no functional memory behind the pointer
	// scanner, so the replayable schemes are the address-stream ones.
	var engine prefetch.Engine
	switch *scheme {
	case "base":
		engine = prefetch.NewNull()
	case "stride":
		engine = prefetch.NewStride(prefetch.DefaultStrideConfig())
	case "srp":
		engine = prefetch.NewSRP()
	default:
		log.Fatalf("replay: scheme %q not replayable (want base, stride, srp)", *scheme)
	}
	ms, err := sim.NewMemSystem(sim.DefaultMemConfig(), engine)
	if err != nil {
		log.Fatal(err)
	}
	res, err := trace.Replay(r, ms, *gap)
	if err != nil {
		log.Fatal(err)
	}
	ms.Drain()
	fmt.Printf("replayed %d events in %d cycles under %s\n", res.Events, res.Cycles, *scheme)
	core.FprintMemSummary(os.Stdout, ms.L2.Stats(), ms.Stats(), ms.Dram.TrafficBytes())
}

func parseFactor(s string) workloads.Factor {
	switch s {
	case "test":
		return workloads.Test
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	}
	log.Fatalf("unknown factor %q", s)
	return 0
}
