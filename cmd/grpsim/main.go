// Command grpsim runs one benchmark proxy under one prefetching scheme and
// prints the measured statistics.
//
// Usage:
//
//	grpsim -bench mcf -scheme grp/var [-factor full] [-policy default]
//
// Telemetry: -metrics collects the run's counter/gauge/histogram registry
// and cycle-sampled time series (latency percentiles join the report);
// -metrics-out dumps the full snapshot as JSON; -perfetto writes a Chrome
// trace-event timeline loadable at ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/trace"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpsim: ")
	var (
		bench      = flag.String("bench", "wupwise", "benchmark name ("+strings.Join(workloads.Names(), ", ")+")")
		scheme     = flag.String("scheme", "grp/var", "scheme (base, perfectL1, perfectL2, stride, srp, grp/fix, grp/var, ptr, swpf)")
		factor     = flag.String("factor", "small", "workload scale: test, small, full")
		policy     = flag.String("policy", "default", "compiler spatial policy: default, conservative, aggressive")
		compare    = flag.Bool("compare", false, "also run the no-prefetch baseline and report speedup/traffic")
		metricsOn  = flag.Bool("metrics", false, "collect the telemetry registry and sampled time series")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot as JSON to this file (\"-\" for stdout; implies -metrics)")
		sampleInt  = flag.Uint64("sample-interval", 0, "sampler period in cycles (0 = default 4096)")
		perfetto   = flag.String("perfetto", "", "write a Chrome trace-event timeline JSON to this file")
	)
	flag.Parse()

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := core.SchemeByName(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Options{
		Factor:         parseFactor(*factor),
		Policy:         parsePolicy(*policy),
		Metrics:        *metricsOn || *metricsOut != "",
		SampleInterval: *sampleInt,
	}
	var tl *trace.Timeline
	if *perfetto != "" {
		tl = trace.NewTimeline()
		opt.Timeline = tl
	}

	r, err := core.Run(spec, sc, opt)
	if err != nil {
		log.Fatal(err)
	}
	core.FprintResult(os.Stdout, r)

	if *compare && sc != core.NoPrefetch {
		// The baseline run must not append to the main run's timeline or
		// pay for metrics nobody reads.
		baseOpt := opt
		baseOpt.Timeline = nil
		baseOpt.Metrics = false
		base, err := core.Run(spec, core.NoPrefetch, baseOpt)
		if err != nil {
			log.Fatal(err)
		}
		core.FprintCompare(os.Stdout, r, base)
	}

	if *metricsOut != "" {
		writeOut(*metricsOut, r.Metrics.WriteJSON)
	}
	if *perfetto != "" {
		writeOut(*perfetto, tl.WriteJSON)
		fmt.Printf("wrote %d timeline events to %s\n", tl.Len(), *perfetto)
	}
}

// writeOut streams a JSON dump to path, with "-" meaning stdout.
func writeOut(path string, write func(io.Writer) error) {
	if path == "-" {
		if err := write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func parseFactor(s string) workloads.Factor {
	switch s {
	case "test":
		return workloads.Test
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	default:
		fmt.Fprintf(os.Stderr, "grpsim: unknown factor %q (want test, small, full)\n", s)
		os.Exit(2)
		return 0
	}
}

func parsePolicy(s string) compiler.Policy {
	switch s {
	case "default":
		return compiler.PolicyDefault
	case "conservative":
		return compiler.PolicyConservative
	case "aggressive":
		return compiler.PolicyAggressive
	default:
		fmt.Fprintf(os.Stderr, "grpsim: unknown policy %q\n", s)
		os.Exit(2)
		return 0
	}
}
