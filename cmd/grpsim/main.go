// Command grpsim runs one benchmark proxy under one prefetching scheme and
// prints the measured statistics.
//
// Usage:
//
//	grpsim -bench mcf -scheme grp/var [-factor full] [-policy default]
//
// Telemetry: -metrics collects the run's counter/gauge/histogram registry
// and cycle-sampled time series (latency percentiles join the report);
// -metrics-out dumps the full snapshot as JSON; -perfetto writes a Chrome
// trace-event timeline loadable at ui.perfetto.dev.
//
// Attribution: -attrib attaches the prefetch lifecycle ledger
// (internal/attrib) — every issued prefetch is followed to a terminal
// outcome and the report gains the outcome taxonomy plus per-region and
// per-trigger-PC breakdowns; -attrib-out dumps the summary as JSON.
//
// Robustness: -faults arms deterministic fault injection (see
// internal/faults for the spec grammar; presets light, heavy, chaos) and
// -check-invariants audits the memory hierarchy as it runs. Faults perturb
// timing only — architectural results are identical to a fault-free run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/faults"
	"grp/internal/trace"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpsim: ")
	var (
		bench      = flag.String("bench", "wupwise", "benchmark name ("+strings.Join(workloads.Names(), ", ")+")")
		scheme     = flag.String("scheme", "grp/var", "scheme (base, perfectL1, perfectL2, stride, ghb, srp, grp/fix, grp/var, grp-adaptive, ptr, swpf)")
		factor     = flag.String("factor", "small", "workload scale: test, small, full")
		policy     = flag.String("policy", "default", "compiler spatial policy: default, conservative, aggressive")
		compare    = flag.Bool("compare", false, "also run the no-prefetch baseline and report speedup/traffic")
		corun      = flag.String("corun", "", "comma-separated co-runner kernels: simulate -bench (core 0) plus these on one shared L2+DRAM and print the per-core slowdown table")
		metricsOn  = flag.Bool("metrics", false, "collect the telemetry registry and sampled time series")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot as JSON to this file (\"-\" for stdout; implies -metrics)")
		sampleInt  = flag.Int64("sample-interval", 4096, "sampler period in cycles when -metrics is on (must be positive)")
		perfetto   = flag.String("perfetto", "", "write a Chrome trace-event timeline JSON to this file")
		attribOn   = flag.Bool("attrib", false, "attach the prefetch-attribution ledger (outcome/region/PC tables join the report)")
		attribOut  = flag.String("attrib-out", "", "write the attribution summary as JSON to this file (\"-\" for stdout; implies -attrib)")
		faultSpec  = flag.String("faults", "", "fault plan: preset[,key=value,...] (presets "+strings.Join(faults.PresetNames(), ", ")+"); empty = no faults")
		checkInv   = flag.Bool("check-invariants", false, "audit memory-hierarchy invariants during the run")
		jobs       = flag.Int("jobs", 0, "simulation worker goroutines (default GOMAXPROCS; matters with -compare)")
		cacheOn    = flag.Bool("cache", false, "reuse unchanged simulations from the result cache")
		cacheDir   = flag.String("cache-dir", campaign.DefaultCacheDir, "result cache directory")
	)
	flag.Parse()

	// Validate everything up front: a bad flag must be a clear error and a
	// non-zero exit before the run starts, not a mid-run panic or a
	// simulation wasted on an unwritable output path.
	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := core.SchemeByName(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	if *sampleInt <= 0 {
		log.Fatalf("-sample-interval must be positive, got %d", *sampleInt)
	}
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Options{
		Factor:          parseFactor(*factor),
		Policy:          parsePolicy(*policy),
		Metrics:         *metricsOn || *metricsOut != "",
		SampleInterval:  uint64(*sampleInt),
		Attrib:          *attribOn || *attribOut != "",
		CheckInvariants: *checkInv,
	}
	if plan.Active() {
		opt.Faults = &plan
	}
	if err := opt.Validate(); err != nil {
		log.Fatal(err)
	}
	if *corun != "" {
		// Co-run mode replaces the single-cell campaign path entirely:
		// RunCoRun drives all cores over the shared fabric and the report
		// is the per-core slowdown table. Single-core-only instruments
		// (telemetry, timelines, faults) are rejected by the engine.
		if *compare || *cacheOn || *perfetto != "" {
			log.Fatal("-corun does not combine with -compare, -cache, or -perfetto")
		}
		runCoRun(spec.Name, *corun, sc, opt, openOut(*attribOut))
		return
	}
	var tl *trace.Timeline
	if *perfetto != "" {
		tl = trace.NewTimeline()
		opt.Timeline = tl
	}
	metricsFile := openOut(*metricsOut)
	perfettoFile := openOut(*perfetto)
	attribFile := openOut(*attribOut)

	// Both the main run and the -compare baseline go through the campaign
	// engine: with -cache an unchanged cell (the baseline in particular)
	// is a cache hit instead of a re-simulation, and with -compare the
	// two cells run in parallel.
	eng := campaign.New(campaign.Config{Jobs: *jobs, Cache: *cacheOn, CacheDir: *cacheDir})
	jobsList := []campaign.Job{{Bench: spec.Name, Scheme: sc, Opt: opt}}
	if *compare && sc != core.NoPrefetch {
		// The baseline run must not append to the main run's timeline or
		// pay for metrics nobody reads.
		baseOpt := opt
		baseOpt.Timeline = nil
		baseOpt.Metrics = false
		baseOpt.Attrib = false
		jobsList = append(jobsList, campaign.Job{Bench: spec.Name, Scheme: core.NoPrefetch, Opt: baseOpt})
	}
	// SIGINT/SIGTERM cancel the run: the simulation polls the context from
	// its commit loop, so even one long cell stops promptly and cleanly.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	results, err := eng.Run(ctx, jobsList)
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	core.FprintResult(os.Stdout, r)
	if opt.Faults != nil {
		fmt.Printf("faults injected: %v, cancelled=%d (arch digest %#016x)\n",
			r.FaultCounts, r.Mem.PrefetchesCancelled, r.ArchDigest)
	}
	if len(results) > 1 {
		core.FprintCompare(os.Stdout, r, results[1])
	}
	if cs := eng.CacheStats(); *cacheOn && cs.Hits > 0 {
		fmt.Printf("cache: %d of %d runs served from %s\n", cs.Hits, len(jobsList), *cacheDir)
	}

	if metricsFile != nil {
		writeOut(metricsFile, r.Metrics.WriteJSON)
	}
	if attribFile != nil {
		writeOut(attribFile, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(r.Attrib)
		})
	}
	if perfettoFile != nil {
		writeOut(perfettoFile, tl.WriteJSON)
		fmt.Printf("wrote %d timeline events to %s\n", tl.Len(), *perfetto)
	}
}

// runCoRun is the -corun driver: simulate bench (core 0) plus the
// comma-separated co-runners on one shared L2+DRAM, run each workload
// solo for the slowdown reference, and print the per-core table. With
// -attrib each core's lifecycle ledger joins the report (and -attrib-out
// dumps the per-core summaries as a JSON array).
func runCoRun(bench, list string, sc core.Scheme, opt core.Options, attribFile *os.File) {
	benches := []string{bench}
	for _, b := range strings.Split(list, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			log.Fatalf("-corun: empty kernel in %q", list)
		}
		if _, err := workloads.ByName(b); err != nil {
			log.Fatal(err)
		}
		benches = append(benches, b)
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opt.Cancel = ctx.Err

	cr, err := core.RunCoRun(benches, sc, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := cr.ComputeSlowdowns(opt); err != nil {
		log.Fatal(err)
	}
	core.FprintCoRun(os.Stdout, cr)
	if opt.Attrib {
		for _, r := range cr.Results {
			fmt.Printf("\ncore %d (%s):", r.CoRun.Core, r.Bench)
			core.FprintAttrib(os.Stdout, r.Attrib)
		}
	}
	if attribFile != nil {
		writeOut(attribFile, func(w io.Writer) error {
			summaries := make([]interface{}, len(cr.Results))
			for i, r := range cr.Results {
				summaries[i] = r.Attrib
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(summaries)
		})
	}
}

// openOut opens an output path before the run so an unwritable path fails
// fast. "" means no output (nil); "-" means stdout.
func openOut(path string) *os.File {
	switch path {
	case "":
		return nil
	case "-":
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// writeOut streams a JSON dump to an already-open file.
func writeOut(f *os.File, write func(io.Writer) error) {
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if f != os.Stdout {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

func parseFactor(s string) workloads.Factor {
	switch s {
	case "test":
		return workloads.Test
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	default:
		fmt.Fprintf(os.Stderr, "grpsim: unknown factor %q (want test, small, full)\n", s)
		os.Exit(2)
		return 0
	}
}

func parsePolicy(s string) compiler.Policy {
	switch s {
	case "default":
		return compiler.PolicyDefault
	case "conservative":
		return compiler.PolicyConservative
	case "aggressive":
		return compiler.PolicyAggressive
	default:
		fmt.Fprintf(os.Stderr, "grpsim: unknown policy %q\n", s)
		os.Exit(2)
		return 0
	}
}
