// Command grpsim runs one benchmark proxy under one prefetching scheme and
// prints the measured statistics.
//
// Usage:
//
//	grpsim -bench mcf -scheme grp/var [-factor full] [-policy default]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpsim: ")
	var (
		bench   = flag.String("bench", "wupwise", "benchmark name ("+strings.Join(workloads.Names(), ", ")+")")
		scheme  = flag.String("scheme", "grp/var", "scheme (base, perfectL1, perfectL2, stride, srp, grp/fix, grp/var, ptr, swpf)")
		factor  = flag.String("factor", "small", "workload scale: test, small, full")
		policy  = flag.String("policy", "default", "compiler spatial policy: default, conservative, aggressive")
		compare = flag.Bool("compare", false, "also run the no-prefetch baseline and report speedup/traffic")
	)
	flag.Parse()

	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := core.SchemeByName(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Options{Factor: parseFactor(*factor), Policy: parsePolicy(*policy)}

	r, err := core.Run(spec, sc, opt)
	if err != nil {
		log.Fatal(err)
	}
	printResult(r)

	if *compare && sc != core.NoPrefetch {
		base, err := core.Run(spec, core.NoPrefetch, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nvs no prefetching:\n")
		fmt.Printf("  speedup          %.3f\n", core.Speedup(r, base))
		fmt.Printf("  traffic increase %.2fx\n", core.TrafficIncrease(r, base))
		fmt.Printf("  coverage         %.1f%%\n", core.Coverage(r, base))
	}
}

func printResult(r *core.Result) {
	fmt.Printf("benchmark %s  scheme %s\n", r.Bench, r.Scheme)
	fmt.Printf("  instructions     %d\n", r.CPU.Instrs)
	fmt.Printf("  cycles           %d\n", r.CPU.Cycles)
	fmt.Printf("  IPC              %.3f\n", r.IPC())
	fmt.Printf("  branches         %d (%d mispredicted)\n", r.CPU.Branches, r.CPU.Mispredicts)
	fmt.Printf("  L1: %d accesses, %.1f%% miss\n", r.L1.Accesses, r.L1.MissRate())
	fmt.Printf("  L2: %d accesses, %.1f%% miss\n", r.L2.Accesses, r.L2.MissRate())
	fmt.Printf("  memory traffic   %d bytes (%d blocks)\n", r.TrafficBytes, r.TrafficBytes/64)
	fmt.Printf("  prefetches       %d issued, %d useful, %d late, accuracy %.1f%%\n",
		r.Mem.PrefetchesIssued, r.L2.UsefulPrefetches, r.Mem.PrefetchLates, r.Accuracy())
	fmt.Printf("  hints            %d/%d mem instructions hinted (%.1f%%)\n",
		r.Hints.Hinted(), r.Hints.MemInsts, r.Hints.HintRatio())
}

func parseFactor(s string) workloads.Factor {
	switch s {
	case "test":
		return workloads.Test
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	default:
		fmt.Fprintf(os.Stderr, "grpsim: unknown factor %q (want test, small, full)\n", s)
		os.Exit(2)
		return 0
	}
}

func parsePolicy(s string) compiler.Policy {
	switch s {
	case "default":
		return compiler.PolicyDefault
	case "conservative":
		return compiler.PolicyConservative
	case "aggressive":
		return compiler.PolicyAggressive
	default:
		fmt.Fprintf(os.Stderr, "grpsim: unknown policy %q\n", s)
		os.Exit(2)
		return 0
	}
}
