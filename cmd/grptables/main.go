// Command grptables regenerates every table and figure of the paper's
// evaluation section and prints them in order, either as fixed-width
// ASCII or as a JSON array of exhibits. Simulations run through the
// campaign engine: cells fan out over -jobs workers, and with -cache a
// re-run only re-simulates what changed.
//
// Usage:
//
//	grptables [-factor small|full] [-bench a,b,c] [-jobs N] [-cache]
//	          [-skip-sensitivity] [-format ascii|json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"grp/internal/campaign"
	"grp/internal/core"
	"grp/internal/stats"
	"grp/internal/workloads"
)

// exhibit pairs a stable machine key with one rendered table so the JSON
// output preserves presentation order.
type exhibit struct {
	Key   string       `json:"key"`
	Table *stats.Table `json:"table"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("grptables: ")
	var (
		factor   = flag.String("factor", "small", "workload scale: test, small, full")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		skipSens = flag.Bool("skip-sensitivity", false, "skip the Section 5.4 policy sweep (3x extra simulation)")
		charts   = flag.Bool("charts", false, "also render Figures 1 and 12 as ASCII bar charts (ascii format only)")
		attribOn = flag.Bool("attrib", false, "run with the attribution ledger and add the per-scheme outcome exhibit")
		format   = flag.String("format", "ascii", "output format: ascii, json")
		jobs     = flag.Int("jobs", 0, "simulation worker goroutines (default GOMAXPROCS)")
		cacheOn  = flag.Bool("cache", false, "reuse unchanged simulations from the result cache")
		cacheDir = flag.String("cache-dir", campaign.DefaultCacheDir, "result cache directory")
	)
	flag.Parse()
	if *format != "ascii" && *format != "json" {
		log.Fatalf("unknown format %q (want ascii or json)", *format)
	}

	var f workloads.Factor
	switch *factor {
	case "test":
		f = workloads.Test
	case "small":
		f = workloads.Small
	case "full":
		f = workloads.Full
	default:
		log.Fatalf("unknown factor %q", *factor)
	}
	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	opt := core.Options{Factor: f, Attrib: *attribOn}

	eng := campaign.New(campaign.Config{Jobs: *jobs, Cache: *cacheOn, CacheDir: *cacheDir})

	start := time.Now()
	log.Printf("simulating %s-scale suite across %d schemes (%d jobs)...",
		f, len(core.AllSchemes()), eng.Jobs())
	// SIGINT/SIGTERM stop the sweep between cells (and inside one, via
	// the campaign engine's context plumbing).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	suite, err := eng.RunSuite(ctx, names, nil, opt)
	if err != nil {
		log.Fatal(err)
	}
	if cs := eng.CacheStats(); *cacheOn {
		log.Printf("suite done in %v (%d cache hits, simulated %d)",
			time.Since(start).Round(time.Millisecond), cs.Hits, cs.Misses)
	} else {
		log.Printf("suite done in %v", time.Since(start).Round(time.Millisecond))
	}

	var exhibits []exhibit
	add := func(key string, t *stats.Table) {
		exhibits = append(exhibits, exhibit{Key: key, Table: t})
	}

	fig1, err := suite.Figure1()
	fatal(err)
	add("figure1", fig1)

	_, t1, err := suite.Table1()
	fatal(err)
	add("table1", t1)

	t3, err := suite.Table3()
	fatal(err)
	add("table3", t3)

	fig9, err := suite.Figure9()
	fatal(err)
	add("figure9", fig9)

	fig10, err := suite.Figure10()
	fatal(err)
	add("figure10", fig10)

	fig11, err := suite.Figure11()
	fatal(err)
	add("figure11", fig11)

	t4, err := suite.Table4(nil)
	fatal(err)
	add("table4", t4)

	fig12, err := suite.Figure12()
	fatal(err)
	add("figure12", fig12)

	t5, err := suite.Table5()
	fatal(err)
	add("table5", t5)

	t6, err := suite.Table6()
	fatal(err)
	add("table6", t6)

	if *attribOn {
		ta, err := suite.TableAttrib()
		fatal(err)
		add("attrib", ta)
	}

	if !*skipSens {
		log.Printf("running Section 5.4 policy sweep...")
		_, ts, err := core.RunSensitivityWith(ctx, names, opt, eng.Runner())
		fatal(err)
		add("sensitivity", ts)
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(exhibits))
		return
	}
	for _, e := range exhibits {
		fmt.Println(e.Table)
		if *charts {
			switch e.Key {
			case "figure1":
				c, err := suite.Figure1Chart()
				fatal(err)
				fmt.Println(c)
			case "figure12":
				c, err := suite.Figure12Chart()
				fatal(err)
				fmt.Println(c)
			}
		}
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
