// Command grptables regenerates every table and figure of the paper's
// evaluation section from fresh simulations and prints them in order.
//
// Usage:
//
//	grptables [-factor small|full] [-bench a,b,c] [-skip-sensitivity]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"grp/internal/core"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grptables: ")
	var (
		factor   = flag.String("factor", "small", "workload scale: test, small, full")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		skipSens = flag.Bool("skip-sensitivity", false, "skip the Section 5.4 policy sweep (3x extra simulation)")
		charts   = flag.Bool("charts", false, "also render Figures 1 and 12 as ASCII bar charts")
	)
	flag.Parse()

	var f workloads.Factor
	switch *factor {
	case "test":
		f = workloads.Test
	case "small":
		f = workloads.Small
	case "full":
		f = workloads.Full
	default:
		log.Fatalf("unknown factor %q", *factor)
	}
	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	opt := core.Options{Factor: f}

	start := time.Now()
	log.Printf("simulating %s-scale suite across %d schemes...", f, len(core.AllSchemes()))
	suite, err := core.RunSuite(names, nil, opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("suite done in %v", time.Since(start).Round(time.Millisecond))

	fig1, err := suite.Figure1()
	fatal(err)
	fmt.Println(fig1)
	if *charts {
		c, err := suite.Figure1Chart()
		fatal(err)
		fmt.Println(c)
	}

	_, t1, err := suite.Table1()
	fatal(err)
	fmt.Println(t1)

	t3, err := suite.Table3()
	fatal(err)
	fmt.Println(t3)

	fig9, err := suite.Figure9()
	fatal(err)
	fmt.Println(fig9)

	fig10, err := suite.Figure10()
	fatal(err)
	fmt.Println(fig10)

	fig11, err := suite.Figure11()
	fatal(err)
	fmt.Println(fig11)

	t4, err := suite.Table4(nil)
	fatal(err)
	fmt.Println(t4)

	fig12, err := suite.Figure12()
	fatal(err)
	fmt.Println(fig12)
	if *charts {
		c, err := suite.Figure12Chart()
		fatal(err)
		fmt.Println(c)
	}

	t5, err := suite.Table5()
	fatal(err)
	fmt.Println(t5)

	t6, err := suite.Table6()
	fatal(err)
	fmt.Println(t6)

	if !*skipSens {
		log.Printf("running Section 5.4 policy sweep...")
		_, ts, err := core.RunSensitivity(names, opt)
		fatal(err)
		fmt.Println(ts)
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
