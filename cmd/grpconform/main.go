// Command grpconform runs the differential conformance campaign: N seeded
// generated programs, each executed by the functional interpreter (the
// oracle) and by the timed simulator under every requested scheme and
// fault variant, asserting architectural equality and metric sanity (see
// internal/conformance).
//
// Usage:
//
//	grpconform -n 500 -seed 1 -jobs 8 [-schemes base,srp,grp/var] \
//	    [-faults 'light;heavy'] [-overlay l2.size=512K] [-arith] [-timing] \
//	    [-shrink] [-shrink-out repro.txt] [-q] [-listen localhost:6060]
//	grpconform -h2h [-n 50] [-seed 1] [-jobs 8]
//
// The summary on stdout is deterministic: byte-identical across -jobs
// settings. Exit status: 0 all programs conform, 1 conformance failures
// (with -shrink, the first failing program is minimized and printed),
// 2 usage or configuration errors.
//
// With -h2h the tool instead runs the scheme head-to-head comparison
// (internal/conformance.RunHeadToHead): per-class geometric-mean IPC for
// base, stride, ghb, grp/var, and grp-adaptive over clean and hint-hostile
// generated workloads, printed as a table. -n and -seed size and seed the
// fleet; -schemes narrows the columns.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"grp/internal/campaign"
	"grp/internal/conformance"
	"grp/internal/core"
	"grp/internal/obs"
	"grp/internal/progen"
)

// overlayFlags collects repeated -overlay k=v settings.
type overlayFlags []string

func (o *overlayFlags) String() string     { return strings.Join(*o, " ") }
func (o *overlayFlags) Set(v string) error { *o = append(*o, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpconform: ")
	var (
		n         = flag.Int("n", 200, "number of generated programs to check")
		seed      = flag.Int64("seed", 1, "base seed; program i uses seed+i")
		jobs      = flag.Int("jobs", 0, "worker goroutines (default GOMAXPROCS)")
		schemes   = flag.String("schemes", "all", "comma-separated schemes to differentiate (default: base,stride,ghb,srp,grp/fix,grp/var,grp-adaptive)")
		faultSpec = flag.String("faults", "", "semicolon-separated fault variants (preset names or key=value specs; empty/none = fault-free only)")
		arith     = flag.Bool("arith", false, "restrict the generator to the arithmetic-only grammar (no heap idioms)")
		maxSteps  = flag.Int("max-steps", 0, "interpreter oracle step cap; longer programs are skipped (0 = default)")
		timing    = flag.Bool("timing", false, "rerun every clean cell on the legacy engine and require cycle-for-cycle equality")
		shrink    = flag.Bool("shrink", false, "on failure, minimize the first failing program and print the reproducer")
		shrinkOut = flag.String("shrink-out", "", "also write the shrunk reproducer to this file")
		quiet     = flag.Bool("q", false, "suppress per-program progress lines")
		listen    = flag.String("listen", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address during the run, e.g. localhost:6060")
		h2h       = flag.Bool("h2h", false, "run the scheme head-to-head IPC comparison instead of the conformance campaign")
	)
	var overlays overlayFlags
	flag.Var(&overlays, "overlay", "config overlay axis key=value (repeatable; same axes as the campaign spec grammar)")
	flag.Parse()

	scs, err := conformance.ParseSchemes(*schemes)
	if err != nil {
		usageErr(err)
	}
	variants, err := conformance.ParseVariants(*faultSpec)
	if err != nil {
		usageErr(err)
	}
	base := core.Options{}
	for _, ov := range overlays {
		k, v, ok := strings.Cut(ov, "=")
		if !ok {
			usageErr(fmt.Errorf("overlay %q is not key=value", ov))
		}
		if err := campaign.ApplyAxis(&base, strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
			usageErr(err)
		}
	}

	if *h2h {
		h2hCfg := conformance.H2HConfig{N: *n, Seed: *seed, Jobs: *jobs, Base: base}
		if *schemes != "all" {
			h2hCfg.Schemes = scs
		}
		start := time.Now()
		rep, err := conformance.RunHeadToHead(h2hCfg)
		if err != nil {
			log.Printf("error: %v", err)
			os.Exit(2)
		}
		fmt.Print(rep.Table())
		log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
		return
	}

	// SIGINT/SIGTERM cancel the campaign: in-flight programs finish, no
	// new ones start, and the run exits with the cancellation error.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := conformance.Config{
		N:           *n,
		Seed:        *seed,
		Jobs:        *jobs,
		Schemes:     scs,
		Variants:    variants,
		Base:        base,
		Gen:         progen.Config{Arith: *arith},
		MaxSteps:    *maxSteps,
		TimingCheck: *timing,
		Ctx:         ctx,
	}
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reporter := obs.NewReporter(*n, workers)
	if *listen != "" {
		srv, err := obs.NewServer(*listen, reporter, obs.NewBuildInfo(obs.Version, campaign.SchemaVersion()))
		if err != nil {
			log.Printf("error: %v", err)
			os.Exit(2)
		}
		defer srv.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}
	cfg.OnProgramStart = reporter.CellStart
	cfg.Progress = func(done, total, failed int) {
		reporter.CellDone(false)
		if *quiet {
			return
		}
		s := reporter.Snapshot()
		line := fmt.Sprintf("grpconform: program %d/%d checked (%d failing)  %.1f prog/s  util %.0f%%",
			done, total, failed, s.CellsPerSec, 100*s.Utilization)
		if s.ETA > 0 {
			line += fmt.Sprintf("  eta %s", s.ETA.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, line)
	}

	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.String()
	}
	log.Printf("checking %d programs from seed %d: schemes [%s], %d fault variants, grammar %s",
		*n, *seed, strings.Join(names, " "), len(variants), grammarName(*arith))

	start := time.Now()
	rep, err := conformance.Run(cfg)
	if err != nil {
		log.Printf("error: %v", err)
		os.Exit(2)
	}
	fmt.Print(rep.Summary())
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))

	if !rep.Failed() {
		return
	}
	if *shrink {
		shrinkFirst(cfg, rep, *shrinkOut)
	}
	os.Exit(1)
}

// shrinkFirst minimizes the first failing program and prints it.
func shrinkFirst(cfg conformance.Config, rep *conformance.Report, outPath string) {
	fails := rep.Failures()
	first := fails[0]
	// Narrow the shrink predicate to the schemes and variants that failed
	// for this seed: every candidate evaluation replays the whole check.
	schemeSet := map[core.Scheme]bool{}
	variantSet := map[string]bool{}
	for _, f := range fails {
		if f.Seed == first.Seed {
			schemeSet[f.Scheme] = true
			variantSet[f.Variant] = true
		}
	}
	shrinkCfg := cfg
	shrinkCfg.Schemes = nil
	for _, sc := range cfg.Schemes {
		if schemeSet[sc] {
			shrinkCfg.Schemes = append(shrinkCfg.Schemes, sc)
		}
	}
	if len(shrinkCfg.Schemes) == 0 {
		// The failure came from the perfect-L2 reference cell; keep one
		// cheap realistic scheme so the check still exercises it.
		shrinkCfg.Schemes = []core.Scheme{core.NoPrefetch}
	}
	shrinkCfg.Variants = nil
	for _, v := range cfg.Variants {
		if variantSet[v.Name] {
			shrinkCfg.Variants = append(shrinkCfg.Variants, v)
		}
	}
	shrinkCfg.Progress = nil

	log.Printf("shrinking seed %d (%d failing cells)...", first.Seed, len(schemeSet)*max(1, len(shrinkCfg.Variants)+1))
	sr, err := conformance.Shrink(shrinkCfg, first.Seed, 0)
	if err != nil {
		log.Printf("shrink failed: %v", err)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// reproducer: seed %d, %d static instructions, %d shrink evals\n", first.Seed, sr.Instrs, sr.Evals)
	for _, f := range sr.Failures {
		fmt.Fprintf(&b, "// %s\n", f)
	}
	b.WriteString(sr.Prog.String())
	fmt.Fprint(os.Stderr, b.String())
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(b.String()), 0o644); err != nil {
			log.Printf("writing %s: %v", outPath, err)
		} else {
			log.Printf("reproducer written to %s", outPath)
		}
	}
}

func grammarName(arith bool) string {
	if arith {
		return "arith"
	}
	return "full"
}

func usageErr(err error) {
	log.Printf("error: %v", err)
	os.Exit(2)
}
