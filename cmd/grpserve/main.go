// Command grpserve runs the campaign service: an HTTP/JSON API that
// accepts sweep submissions (the grpsweep spec grammar), schedules every
// client's cells onto one shared worker pool with per-tenant fairness
// and backpressure, dedupes identical in-flight cells so each unique
// cell simulates exactly once, and streams per-cell results as they
// land.
//
// Usage:
//
//	grpserve [-listen :8080] [-jobs N] [-max-queue 4096] \
//	    [-cache-dir .grpcache] [-mem] [-cell-timeout 10m] [-retries 3]
//
// API:
//
//	POST /v1/sweeps                  submit {"spec": "...", ...}; 202 on
//	                                 admission, 200 for a known sweep,
//	                                 429 + Retry-After when over capacity
//	GET  /v1/sweeps                  list sweeps
//	GET  /v1/sweeps/{id}             one sweep's status
//	GET  /v1/sweeps/{id}/events      per-cell NDJSON stream (SSE with
//	                                 Accept: text/event-stream); resume
//	                                 with ?cursor=N
//	GET  /v1/sweeps/{id}/artifact    finished artifact, ?format=ascii|json|csv
//	                                 — byte-identical to grpsweep's output
//	GET  /metrics                    Prometheus text (fleet + per-sweep)
//	GET  /healthz                    liveness + load
//
// The service is crash-safe: each sweep keeps a journal under the cache
// directory, so a killed server resumes unfinished sweeps on restart.
// SIGINT/SIGTERM drains gracefully — in-flight cells finish and are
// journaled, queued cells stay durably undone for the next process.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grp/internal/campaign"
	"grp/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grpserve: ")
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		jobs     = flag.Int("jobs", 0, "worker goroutines (default GOMAXPROCS)")
		maxQueue = flag.Int("max-queue", 4096, "max admitted-but-undispatched cells before 429")
		cacheDir = flag.String("cache-dir", campaign.DefaultCacheDir, "result cache and journal directory")
		mem      = flag.Bool("mem", false, "in-memory result store (no persistence, no crash resume)")
		cellTO   = flag.Duration("cell-timeout", 0, "per-cell attempt deadline (0 = none)")
		retries  = flag.Int("retries", 0, "attempts per cell for transient failures (default 3)")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:     *jobs,
		MaxQueue:    *maxQueue,
		CacheDir:    *cacheDir,
		Mem:         *mem,
		CellTimeout: *cellTO,
		Retries:     *retries,
		Warnf:       log.Printf,
	})
	s.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	log.Printf("listening on http://%s (POST /v1/sweeps, GET /metrics)", ln.Addr())

	// SIGINT/SIGTERM: stop accepting, drain in-flight cells (journaled),
	// exit. Queued cells resume on the next start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("draining: in-flight cells finish, queued cells stay journaled")
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(shCtx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	s.Drain()
	log.Printf("drained cleanly")
}
