// Hot-path baseline: how much a single simulation cell gained from the
// event-queue/pool overhaul (calendar queue, slab-pooled in-flight lines,
// open-addressed tables, ring slot scheduler), and proof it stays gained.
//
//	go test -bench=BenchmarkCellHotPath -benchtime=3x
//	go test -run TestCellHotPathSpeedup      (emits BENCH_sim.json)
//	go test -run TestHotPathSteadyStateAllocs
//
// BENCH_sim.json format (one object, see DESIGN.md §10):
//
//	{
//	  "factor": "test",            // workload scale the cells ran at
//	  "scheme": "grp/var",         // prefetch scheme of every cell
//	  "rounds": 3,                 // interleaved timing rounds (min taken)
//	  "num_cpu": 1,
//	  "kernels": [                 // one entry per kernel, kernel order
//	    {"bench": "mcf",
//	     "legacy_ns_per_cell": 1,  // best-of-rounds, pre-overhaul engine
//	     "new_ns_per_cell": 1,     // best-of-rounds, overhauled engine
//	     "speedup": 1.0,           // legacy / new
//	     "cycles": 1,              // simulated cycles of the cell
//	     "cycles_per_sec": 1.0},   // cycles / best new-engine seconds
//	    ...],
//	  "geomean_speedup": 1.0,      // geometric mean of kernel speedups
//	  "steady_allocs_per_op": 0    // heap allocs per warmed memsys op
//	}
package grp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"grp/internal/core"
	"grp/internal/isa"
	"grp/internal/prefetch"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// measureSteadyAllocs drives a warmed memory system through a fixed
// working set — demand misses, L2 hits, prefetch traffic, arrival drain —
// and returns the heap allocations per iteration. The overhaul's contract
// is zero: the pool recycles in-flight lines, the calendar queue's bucket
// slices keep their capacity, and the open-addressed tables stop growing
// once the working set is resident.
func measureSteadyAllocs() float64 {
	ms, err := sim.NewMemSystem(sim.DefaultMemConfig(), prefetch.NewSRP())
	if err != nil {
		panic(err)
	}
	now := uint64(1000)
	drive := func() {
		for i := 0; i < 256; i++ {
			addr := uint64(0x40000000 + (i%1024)*512)
			done := ms.Load(uint64(i), addr, isa.HintNone, 0, now)
			if done > now {
				now = done
			}
			now++
		}
		ms.Drain()
	}
	drive() // warm: grow pool, tables, and bucket capacities
	drive()
	return testing.AllocsPerRun(100, drive)
}

// TestHotPathSteadyStateAllocs is the allocation gate on its own: it
// runs in every CI tier (no -short skip — it is timing-independent).
func TestHotPathSteadyStateAllocs(t *testing.T) {
	if allocs := measureSteadyAllocs(); allocs != 0 {
		t.Fatalf("steady-state hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkCellHotPath times one representative cell (mcf × grp/var, the
// pointer-chasing kernel the paper's GRP case is built around) on the
// overhauled engine and on the retained legacy engine, with allocation
// counts. The committed before/after numbers live in BENCH_sim.json.
func BenchmarkCellHotPath(b *testing.B) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []struct {
		name   string
		legacy bool
	}{{"new", false}, {"legacy", true}} {
		b.Run("engine="+eng.name, func(b *testing.B) {
			opt := core.Options{Factor: benchFactor(), LegacyEngine: eng.legacy}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(spec, core.GRPVar, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSimKernel is one kernel's row in BENCH_sim.json.
type benchSimKernel struct {
	Bench           string  `json:"bench"`
	LegacyNSPerCell int64   `json:"legacy_ns_per_cell"`
	NewNSPerCell    int64   `json:"new_ns_per_cell"`
	Speedup         float64 `json:"speedup"`
	Cycles          uint64  `json:"cycles"`
	CyclesPerSec    float64 `json:"cycles_per_sec"`
}

// benchSimReport is the artifact CI archives as BENCH_sim.json.
type benchSimReport struct {
	Factor            string           `json:"factor"`
	Scheme            string           `json:"scheme"`
	Rounds            int              `json:"rounds"`
	NumCPU            int              `json:"num_cpu"`
	Kernels           []benchSimKernel `json:"kernels"`
	GeomeanSpeedup    float64          `json:"geomean_speedup"`
	SteadyAllocsPerOp float64          `json:"steady_allocs_per_op"`
}

// parseBenchSim decodes and sanity-checks a BENCH_sim.json document; CI
// consumers and the format test share this one definition of "valid".
func parseBenchSim(data []byte) (*benchSimReport, error) {
	var r benchSimReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Factor == "" || r.Scheme == "" {
		return nil, fmt.Errorf("bench_sim: missing factor/scheme")
	}
	if r.Rounds <= 0 || len(r.Kernels) == 0 {
		return nil, fmt.Errorf("bench_sim: %d rounds, %d kernels", r.Rounds, len(r.Kernels))
	}
	if r.GeomeanSpeedup <= 0 {
		return nil, fmt.Errorf("bench_sim: geomean_speedup %v not positive", r.GeomeanSpeedup)
	}
	for _, k := range r.Kernels {
		if k.Bench == "" || k.LegacyNSPerCell <= 0 || k.NewNSPerCell <= 0 {
			return nil, fmt.Errorf("bench_sim: kernel %q has non-positive timings", k.Bench)
		}
		if got := float64(k.LegacyNSPerCell) / float64(k.NewNSPerCell); math.Abs(got-k.Speedup) > 0.01*k.Speedup {
			return nil, fmt.Errorf("bench_sim: kernel %q speedup %v inconsistent with timings (%v)", k.Bench, k.Speedup, got)
		}
	}
	return &r, nil
}

// TestCellHotPathSpeedup times every kernel's grp/var cell on both
// engines — interleaved, best-of-rounds, so machine noise hits both sides
// alike — emits BENCH_sim.json, and gates the overhaul's headline claim:
// the new engine runs single cells at least 2× faster (geomean across
// kernels) with an allocation-free steady state.
func TestCellHotPathSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const rounds = 3
	rep := benchSimReport{
		Factor: workloads.Test.String(),
		Scheme: core.GRPVar.String(),
		Rounds: rounds,
		NumCPU: runtime.NumCPU(),
	}

	logSum := 0.0
	for _, name := range workloads.Names() {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		minLegacy, minNew := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		var cycles uint64
		for r := 0; r < rounds; r++ {
			start := time.Now()
			if _, err := core.Run(spec, core.GRPVar, core.Options{Factor: workloads.Test, LegacyEngine: true}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < minLegacy {
				minLegacy = d
			}
			start = time.Now()
			res, err := core.Run(spec, core.GRPVar, core.Options{Factor: workloads.Test})
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < minNew {
				minNew = d
			}
			cycles = res.CPU.Cycles
		}
		sp := float64(minLegacy) / float64(minNew)
		logSum += math.Log(sp)
		rep.Kernels = append(rep.Kernels, benchSimKernel{
			Bench:           name,
			LegacyNSPerCell: minLegacy.Nanoseconds(),
			NewNSPerCell:    minNew.Nanoseconds(),
			Speedup:         sp,
			Cycles:          cycles,
			CyclesPerSec:    float64(cycles) / minNew.Seconds(),
		})
	}
	rep.GeomeanSpeedup = math.Exp(logSum / float64(len(rep.Kernels)))
	rep.SteadyAllocsPerOp = measureSteadyAllocs()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseBenchSim(data); err != nil {
		t.Fatalf("emitted report fails its own parser: %v", err)
	}
	if err := os.WriteFile("BENCH_sim.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cell hot path: geomean %.2fx over %d kernels, steady allocs/op %.1f",
		rep.GeomeanSpeedup, len(rep.Kernels), rep.SteadyAllocsPerOp)

	if rep.GeomeanSpeedup < 2 {
		t.Errorf("single-cell geomean speedup is %.2fx, want >= 2x", rep.GeomeanSpeedup)
	}
	if rep.SteadyAllocsPerOp != 0 {
		t.Errorf("steady-state hot path allocates %.1f allocs/op, want 0", rep.SteadyAllocsPerOp)
	}
}

// TestBenchSimFormat pins the BENCH_sim.json schema with a canned
// document, and validates the committed artifact when one is present.
func TestBenchSimFormat(t *testing.T) {
	sample := []byte(`{
	  "factor": "test", "scheme": "grp/var", "rounds": 3, "num_cpu": 1,
	  "kernels": [
	    {"bench": "mcf", "legacy_ns_per_cell": 10000000, "new_ns_per_cell": 5000000,
	     "speedup": 2.0, "cycles": 118923, "cycles_per_sec": 23784600.0}
	  ],
	  "geomean_speedup": 2.0,
	  "steady_allocs_per_op": 0
	}`)
	rep, err := parseBenchSim(sample)
	if err != nil {
		t.Fatalf("canned document rejected: %v", err)
	}
	if rep.Kernels[0].Bench != "mcf" || rep.GeomeanSpeedup != 2.0 {
		t.Fatalf("canned document misparsed: %+v", rep)
	}
	for _, bad := range []string{
		`{}`,
		`{"factor":"test","scheme":"grp/var","rounds":0,"kernels":[],"geomean_speedup":2}`,
		`{"factor":"test","scheme":"grp/var","rounds":1,"geomean_speedup":2,
		  "kernels":[{"bench":"mcf","legacy_ns_per_cell":100,"new_ns_per_cell":100,"speedup":3}]}`,
	} {
		if _, err := parseBenchSim([]byte(bad)); err == nil {
			t.Errorf("parser accepted invalid document %s", bad)
		}
	}
	data, err := os.ReadFile("BENCH_sim.json")
	if err != nil {
		t.Skip("no committed BENCH_sim.json to validate")
	}
	if _, err := parseBenchSim(data); err != nil {
		t.Errorf("committed BENCH_sim.json invalid: %v", err)
	}
}
