// Package grp's benchmark harness regenerates every table and figure of
// the paper's evaluation section (see DESIGN.md's per-experiment index):
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigureN runs the simulations behind the
// corresponding exhibit and prints the rendered table once; headline
// numbers are also attached as custom benchmark metrics. The ablation
// benchmarks cover the design choices DESIGN.md calls out.
//
// Set GRP_BENCH_FACTOR=small (or full) for larger working sets; the
// default "test" scale keeps the whole harness to a couple of minutes.
package grp

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"grp/internal/campaign"
	"grp/internal/core"
	"grp/internal/stats"
	"grp/internal/workloads"
)

func benchFactor() workloads.Factor {
	switch os.Getenv("GRP_BENCH_FACTOR") {
	case "small":
		return workloads.Small
	case "full":
		return workloads.Full
	default:
		return workloads.Test
	}
}

var (
	suiteOnce sync.Once
	suite     *core.Suite
	suiteErr  error
)

// benchSuite simulates the full benchmark matrix once and shares it across
// all table/figure benchmarks. It runs through the campaign engine (whose
// reduced suite is byte-identical to serial core.RunSuite) so the shared
// matrix fills at worker-pool speed.
func benchSuite(b *testing.B) *core.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = campaign.RunSuite(nil, nil,
			core.Options{Factor: benchFactor()}, campaign.Config{})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// printOnce prints the rendered exhibit on the first iteration only.
var printed sync.Map

func printOnce(key, out string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", out)
	}
}

func BenchmarkFigure1(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig1", tb.String())
	}
}

func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	var rows []core.Table1Row
	for i := 0; i < b.N; i++ {
		var tb *stats.Table
		var err error
		rows, tb, err = s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t1", tb.String())
	}
	for _, r := range rows {
		switch r.Scheme {
		case core.SRP:
			b.ReportMetric(r.Speedup, "srp-speedup")
			b.ReportMetric(r.TrafficIncrease, "srp-traffic")
		case core.GRPVar:
			b.ReportMetric(r.Speedup, "grp-speedup")
			b.ReportMetric(r.TrafficIncrease, "grp-traffic")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t3", tb.String())
	}
}

func BenchmarkFigure9(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig9", tb.String())
	}
}

func BenchmarkFigure10(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig10", tb.String())
	}
}

func BenchmarkFigure11(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig11", tb.String())
	}
}

func BenchmarkTable4(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Table4(nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t4", tb.String())
	}
	// Flagship ratio: mesa fixed-region traffic over variable-region.
	base := s.Get("mesa", core.NoPrefetch)
	vr := s.Get("mesa", core.GRPVar)
	fx := s.Get("mesa", core.GRPFix)
	if base != nil && vr != nil && fx != nil {
		b.ReportMetric(core.TrafficIncrease(fx, base)/core.TrafficIncrease(vr, base), "mesa-fix/var-traffic")
	}
}

func BenchmarkFigure12(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig12", tb.String())
	}
}

func BenchmarkTable5(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t5", tb.String())
	}
}

func BenchmarkTable6(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tb, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t6", tb.String())
	}
}

func BenchmarkSensitivity(b *testing.B) {
	// Section 5.4: the compiler-policy sweep resimulates per policy, so it
	// runs on a representative subset.
	benches := []string{"swim", "apsi", "art", "equake"}
	for i := 0; i < b.N; i++ {
		rows, tb, err := core.RunSensitivity(benches, core.Options{Factor: benchFactor()})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("sens", tb.String())
		for _, r := range rows {
			if i == 0 {
				b.ReportMetric(r.Speedup, r.Policy+"-speedup")
			}
		}
	}
}

// --- ablations (DESIGN.md Section 4) --------------------------------------

// ablate runs one benchmark under SRP with and without a knob and reports
// the cycle and traffic ratios (with/without).
func ablate(b *testing.B, bench string, scheme core.Scheme, with core.Options) {
	b.Helper()
	spec, err := workloads.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	baseOpt := core.Options{Factor: benchFactor()}
	with.Factor = baseOpt.Factor
	for i := 0; i < b.N; i++ {
		off, err := core.Run(spec, scheme, baseOpt)
		if err != nil {
			b.Fatal(err)
		}
		on, err := core.Run(spec, scheme, with)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(on.CPU.Cycles)/float64(off.CPU.Cycles), "cycles-ratio")
			b.ReportMetric(float64(on.TrafficBytes)/float64(off.TrafficBytes), "traffic-ratio")
		}
	}
}

// BenchmarkAblationLRUInsert compares the paper's LRU insertion for
// prefetch fills against MRU insertion on a pollution-sensitive workload.
func BenchmarkAblationLRUInsert(b *testing.B) {
	ablate(b, "twolf", core.SRP, core.Options{PrefetchInsertMRU: true})
}

// BenchmarkAblationPrioritizer lets prefetches contend with demands.
func BenchmarkAblationPrioritizer(b *testing.B) {
	ablate(b, "twolf", core.SRP, core.Options{DisablePrioritizer: true})
}

// BenchmarkAblationQueueDiscipline compares LIFO (paper) vs FIFO region
// queues.
func BenchmarkAblationQueueDiscipline(b *testing.B) {
	ablate(b, "mcf", core.SRP, core.Options{SRPFIFO: true})
}

// BenchmarkAblationRegionSize sweeps the SRP region size (1 KB / 2 KB /
// 4 KB).
func BenchmarkAblationRegionSize(b *testing.B) {
	for _, blocks := range []int{16, 32, 64} {
		blocks := blocks
		b.Run(fmt.Sprintf("%dKB", blocks*64/1024), func(b *testing.B) {
			spec, err := workloads.ByName("wupwise")
			if err != nil {
				b.Fatal(err)
			}
			opt := core.Options{Factor: benchFactor(), SRPRegionBlocks: blocks}
			for i := 0; i < b.N; i++ {
				r, err := core.Run(spec, core.SRP, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(r.IPC(), "ipc")
					b.ReportMetric(float64(r.TrafficBytes)/1024, "traffic-KB")
				}
			}
		})
	}
}

// BenchmarkAblationRecursionDepth sweeps GRP's recursive chase depth on
// the tree-chasing workload (paper footnote 2 uses 3 for mcf).
func BenchmarkAblationRecursionDepth(b *testing.B) {
	for _, depth := range []uint8{1, 3, 6} {
		depth := depth
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			spec, err := workloads.ByName("mcf")
			if err != nil {
				b.Fatal(err)
			}
			opt := core.Options{Factor: benchFactor(), RecursionDepth: depth}
			for i := 0; i < b.N; i++ {
				r, err := core.Run(spec, core.GRPVar, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(r.IPC(), "ipc")
					b.ReportMetric(float64(r.TrafficBytes)/1024, "traffic-KB")
				}
			}
		})
	}
}

// BenchmarkAblationOpenPageFirst measures the paper's final SRP
// optimization: issuing prefetch candidates whose DRAM row is already
// open before index-order candidates.
func BenchmarkAblationOpenPageFirst(b *testing.B) {
	ablate(b, "wupwise", core.SRP, core.Options{OpenPageFirst: true})
}

// BenchmarkExtensionSoftwarePrefetch compares classic software
// prefetching (the paper's Section 2 foil) against GRP on a dense stream
// (where software prefetching works) and a pointer chase (where it
// cannot compute addresses in advance).
func BenchmarkExtensionSoftwarePrefetch(b *testing.B) {
	for _, bench := range []string{"wupwise", "ammp"} {
		bench := bench
		b.Run(bench, func(b *testing.B) {
			spec, err := workloads.ByName(bench)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.Options{Factor: benchFactor()}
			for i := 0; i < b.N; i++ {
				base, err := core.Run(spec, core.NoPrefetch, opt)
				if err != nil {
					b.Fatal(err)
				}
				sw, err := core.Run(spec, core.SoftwarePF, opt)
				if err != nil {
					b.Fatal(err)
				}
				grp, err := core.Run(spec, core.GRPVar, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(core.Speedup(sw, base), "swpf-speedup")
					b.ReportMetric(core.Speedup(grp, base), "grp-speedup")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second), the engineering metric for the simulator
// itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{Factor: benchFactor()}
	var instrs uint64
	for i := 0; i < b.N; i++ {
		r, err := core.Run(spec, core.GRPVar, opt)
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.CPU.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkSimulatorThroughputTelemetry is the same run with the metrics
// registry and sampler attached, bounding the cost of observability.
func BenchmarkSimulatorThroughputTelemetry(b *testing.B) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{Factor: benchFactor(), Metrics: true}
	var instrs uint64
	for i := 0; i < b.N; i++ {
		r, err := core.Run(spec, core.GRPVar, opt)
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.CPU.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}
