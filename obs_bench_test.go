// Observability overhead gate: how much attaching the prefetch
// attribution ledger (internal/attrib) costs on the single-cell hot path,
// and proof it stays cheap. The ledger is pure bookkeeping — it must never
// show up in a profile.
//
//	go test -bench=BenchmarkCellAttrib -benchtime=3x
//	go test -run TestAttribOverhead          (emits BENCH_obs.json)
//	go test -run TestAttribSteadyStateAllocs
//
// BENCH_obs.json format (one object, see DESIGN.md §11):
//
//	{
//	  "factor": "test",              // workload scale the cells ran at
//	  "scheme": "grp/var",           // prefetch scheme of every cell
//	  "rounds": 9,                   // paired timing rounds (median ratio taken)
//	  "num_cpu": 1,
//	  "kernels": [                   // one entry per kernel, kernel order
//	    {"bench": "mcf",
//	     "detached_ns_per_cell": 1,  // median round, no ledger
//	     "attached_ns_per_cell": 1,  // median round, ledger attached
//	     "overhead": 1.0,            // attached / detached of that round
//	     "issued": 1},               // attributed prefetches of the cell
//	    ...],
//	  "geomean_overhead": 1.0,       // geometric mean of kernel overheads
//	  "attached_steady_allocs_per_op": 0
//	}
package grp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"grp/internal/attrib"
	"grp/internal/core"
	"grp/internal/isa"
	"grp/internal/prefetch"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// measureAttachedSteadyAllocs is measureSteadyAllocs with the attribution
// ledger attached: the same fixed working set, so once the ledger's slab
// and aggregate tables cover it, recording events must allocate nothing.
func measureAttachedSteadyAllocs() float64 {
	ms, err := sim.NewMemSystem(sim.DefaultMemConfig(), prefetch.NewSRP())
	if err != nil {
		panic(err)
	}
	ms.AttachLedger(attrib.NewLedger())
	now := uint64(1000)
	drive := func() {
		for i := 0; i < 256; i++ {
			addr := uint64(0x40000000 + (i%1024)*512)
			done := ms.Load(uint64(i), addr, isa.HintNone, 0, now)
			if done > now {
				now = done
			}
			now++
		}
		ms.Drain()
	}
	drive() // warm: grow the slab, entry map, and aggregate tables
	drive()
	return testing.AllocsPerRun(100, drive)
}

// TestAttribSteadyStateAllocs is the attached-ledger allocation gate on
// its own: timing-independent, runs in every CI tier.
func TestAttribSteadyStateAllocs(t *testing.T) {
	if allocs := measureAttachedSteadyAllocs(); allocs != 0 {
		t.Fatalf("attached-ledger steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkCellAttrib times one representative cell (mcf × grp/var) with
// the ledger detached and attached. The committed before/after numbers
// live in BENCH_obs.json.
func BenchmarkCellAttrib(b *testing.B) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		attrib bool
	}{{"detached", false}, {"attached", true}} {
		b.Run("ledger="+mode.name, func(b *testing.B) {
			opt := core.Options{Factor: benchFactor(), Attrib: mode.attrib}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(spec, core.GRPVar, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchObsKernel is one kernel's row in BENCH_obs.json.
type benchObsKernel struct {
	Bench             string  `json:"bench"`
	DetachedNSPerCell int64   `json:"detached_ns_per_cell"`
	AttachedNSPerCell int64   `json:"attached_ns_per_cell"`
	Overhead          float64 `json:"overhead"`
	Issued            uint64  `json:"issued"`
}

// benchObsReport is the artifact CI archives as BENCH_obs.json.
type benchObsReport struct {
	Factor                    string           `json:"factor"`
	Scheme                    string           `json:"scheme"`
	Rounds                    int              `json:"rounds"`
	NumCPU                    int              `json:"num_cpu"`
	Kernels                   []benchObsKernel `json:"kernels"`
	GeomeanOverhead           float64          `json:"geomean_overhead"`
	AttachedSteadyAllocsPerOp float64          `json:"attached_steady_allocs_per_op"`
}

// parseBenchObs decodes and sanity-checks a BENCH_obs.json document; CI
// consumers and the format test share this one definition of "valid".
func parseBenchObs(data []byte) (*benchObsReport, error) {
	var r benchObsReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Factor == "" || r.Scheme == "" {
		return nil, fmt.Errorf("bench_obs: missing factor/scheme")
	}
	if r.Rounds <= 0 || len(r.Kernels) == 0 {
		return nil, fmt.Errorf("bench_obs: %d rounds, %d kernels", r.Rounds, len(r.Kernels))
	}
	if r.GeomeanOverhead <= 0 {
		return nil, fmt.Errorf("bench_obs: geomean_overhead %v not positive", r.GeomeanOverhead)
	}
	for _, k := range r.Kernels {
		if k.Bench == "" || k.DetachedNSPerCell <= 0 || k.AttachedNSPerCell <= 0 {
			return nil, fmt.Errorf("bench_obs: kernel %q has non-positive timings", k.Bench)
		}
		if got := float64(k.AttachedNSPerCell) / float64(k.DetachedNSPerCell); math.Abs(got-k.Overhead) > 0.01*k.Overhead {
			return nil, fmt.Errorf("bench_obs: kernel %q overhead %v inconsistent with timings (%v)", k.Bench, k.Overhead, got)
		}
	}
	return &r, nil
}

// TestAttribOverhead times every kernel's grp/var cell with the ledger
// detached and attached — paired rounds, median ratio, so machine noise
// hits both sides alike — emits BENCH_obs.json, and gates the tentpole's
// headline claim: full lifecycle attribution costs at most 3% (geomean
// across kernels) with an allocation-free attached steady state.
func TestAttribOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const rounds = 9
	rep := benchObsReport{
		Factor: workloads.Test.String(),
		Scheme: core.GRPVar.String(),
		Rounds: rounds,
		NumCPU: runtime.NumCPU(),
	}

	// timeCell runs one cell after flushing accumulated garbage, so a GC
	// cycle triggered by the previous run's allocations never lands inside
	// the timed window of this one.
	timeCell := func(spec *workloads.Spec, attrib bool) (time.Duration, *core.Result) {
		runtime.GC()
		start := time.Now()
		res, err := core.Run(spec, core.GRPVar, core.Options{Factor: workloads.Test, Attrib: attrib})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), res
	}

	logSum := 0.0
	for _, name := range workloads.Names() {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Each round times the two sides back to back and yields one
		// paired ratio; the median round is the kernel's verdict. Pairing
		// cancels noise that covers a whole round, and the median discards
		// rounds where a transient hit only one side — the failure mode of
		// best-of-N mins on a busy host.
		offs := make([]time.Duration, rounds)
		ons := make([]time.Duration, rounds)
		var issued uint64
		for r := 0; r < rounds; r++ {
			// Alternate which side runs first so warmup and frequency
			// drift hit both sides alike across the rounds.
			order := []bool{false, true}
			if r%2 == 1 {
				order = []bool{true, false}
			}
			for _, attrib := range order {
				d, res := timeCell(spec, attrib)
				if attrib {
					ons[r] = d
					if res.Attrib != nil {
						issued = res.Attrib.Issued
					}
				} else {
					offs[r] = d
				}
			}
		}
		byRatio := make([]int, rounds)
		for i := range byRatio {
			byRatio[i] = i
		}
		sort.Slice(byRatio, func(a, b int) bool {
			return float64(ons[byRatio[a]])*float64(offs[byRatio[b]]) <
				float64(ons[byRatio[b]])*float64(offs[byRatio[a]])
		})
		m := byRatio[rounds/2]
		ov := float64(ons[m]) / float64(offs[m])
		logSum += math.Log(ov)
		rep.Kernels = append(rep.Kernels, benchObsKernel{
			Bench:             name,
			DetachedNSPerCell: offs[m].Nanoseconds(),
			AttachedNSPerCell: ons[m].Nanoseconds(),
			Overhead:          ov,
			Issued:            issued,
		})
	}
	rep.GeomeanOverhead = math.Exp(logSum / float64(len(rep.Kernels)))
	rep.AttachedSteadyAllocsPerOp = measureAttachedSteadyAllocs()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseBenchObs(data); err != nil {
		t.Fatalf("emitted report fails its own parser: %v", err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("attribution overhead: geomean %.3fx over %d kernels, attached steady allocs/op %.1f",
		rep.GeomeanOverhead, len(rep.Kernels), rep.AttachedSteadyAllocsPerOp)

	if rep.GeomeanOverhead > 1.03 {
		t.Errorf("attached-ledger geomean overhead is %.3fx, want <= 1.03x", rep.GeomeanOverhead)
	}
	if rep.AttachedSteadyAllocsPerOp != 0 {
		t.Errorf("attached-ledger steady state allocates %.1f allocs/op, want 0", rep.AttachedSteadyAllocsPerOp)
	}
}

// TestBenchObsFormat pins the BENCH_obs.json schema with a canned
// document, and validates the committed artifact when one is present.
func TestBenchObsFormat(t *testing.T) {
	sample := []byte(`{
	  "factor": "test", "scheme": "grp/var", "rounds": 3, "num_cpu": 1,
	  "kernels": [
	    {"bench": "mcf", "detached_ns_per_cell": 5000000, "attached_ns_per_cell": 5100000,
	     "overhead": 1.02, "issued": 1599}
	  ],
	  "geomean_overhead": 1.02,
	  "attached_steady_allocs_per_op": 0
	}`)
	rep, err := parseBenchObs(sample)
	if err != nil {
		t.Fatalf("canned document rejected: %v", err)
	}
	if rep.Kernels[0].Bench != "mcf" || rep.GeomeanOverhead != 1.02 {
		t.Fatalf("canned document misparsed: %+v", rep)
	}
	for _, bad := range []string{
		`{}`,
		`{"factor":"test","scheme":"grp/var","rounds":0,"kernels":[],"geomean_overhead":1}`,
		`{"factor":"test","scheme":"grp/var","rounds":1,"geomean_overhead":1,
		  "kernels":[{"bench":"mcf","detached_ns_per_cell":100,"attached_ns_per_cell":100,"overhead":3}]}`,
	} {
		if _, err := parseBenchObs([]byte(bad)); err == nil {
			t.Errorf("parser accepted invalid document %s", bad)
		}
	}
	data, err := os.ReadFile("BENCH_obs.json")
	if err != nil {
		t.Skip("no committed BENCH_obs.json to validate")
	}
	if _, err := parseBenchObs(data); err != nil {
		t.Errorf("committed BENCH_obs.json invalid: %v", err)
	}
}
